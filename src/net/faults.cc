#include "src/net/faults.hh"

#include <cmath>
#include <cstdio>

namespace pcsim
{

namespace
{

std::string
format(const char *fmt, unsigned long long a, unsigned long long b = 0)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), fmt, a, b);
    return buf;
}

bool
badFraction(double f)
{
    return !(f >= 0.0) || f > 1.0 || std::isnan(f);
}

/** A window must fit inside a nonzero period to mean anything. */
std::string
checkWindow(const char *what, Tick period, Tick duration)
{
    if (period == 0)
        return std::string(what) + " period must be nonzero";
    if (duration == 0)
        return std::string(what) + " duration must be nonzero";
    if (duration > period)
        return std::string(what) +
               " duration must not exceed its period";
    return "";
}

} // namespace

std::string
FaultConfig::validateError(unsigned num_nodes,
                           std::size_t dir_cache_ways) const
{
    if (badFraction(grayLinkFraction))
        return "grayLinkFraction must be in [0, 1]";
    if (badFraction(stallNodeFraction))
        return "stallNodeFraction must be in [0, 1]";

    if (grayLinkFraction > 0.0 && grayExtraLatency > 0) {
        const std::string e =
            checkWindow("gray-link", grayPeriod, grayDuration);
        if (!e.empty())
            return e;
    }
    if (stallNodeFraction > 0.0) {
        const std::string e =
            checkWindow("NI-stall", stallPeriod, stallDuration);
        if (!e.empty())
            return e;
    }
    if (hotspotExtraLatency > 0) {
        const std::string e =
            checkWindow("hot-spot", hotspotPeriod, hotspotDuration);
        if (!e.empty())
            return e;
        if (hotspotNode != invalidNode && hotspotNode >= num_nodes)
            return format("hotspotNode %llu is outside the %llu-node "
                          "machine",
                          hotspotNode, num_nodes);
    }
    if (dirPressureWays > 0) {
        const std::string e = checkWindow(
            "directory-pressure", dirPressurePeriod,
            dirPressureDuration);
        if (!e.empty())
            return e;
        if (dirPressureWays > dir_cache_ways)
            return format("dirPressureWays %llu exceeds the directory "
                          "cache's %llu ways (pressure must shrink "
                          "associativity, not grow it)",
                          dirPressureWays, dir_cache_ways);
    }
    if (enabled && !anyMechanism())
        return "faults.enabled set but no mechanism is armed "
               "(gray/stall/hotspot/dirPressure all off)";
    return "";
}

FaultPlan::FaultPlan(const FaultConfig &cfg, unsigned num_nodes,
                     Rng rng)
    : _cfg(cfg),
      _numNodes(num_nodes),
      _stalled(num_nodes, 0),
      _stallPhase(num_nodes, 0),
      _dirPhase(num_nodes, 0)
{
    _graySalt = rng.next();
    if (_cfg.grayLinkFraction > 0.0 && _cfg.grayExtraLatency > 0) {
        // Scale the fraction to a 64-bit threshold: link hashes below
        // it are gray. 1.0 maps to "all but one in 2^64" -- close
        // enough, and it keeps the comparison branch-free.
        const long double full = 18446744073709551616.0L; // 2^64
        long double t = (long double)_cfg.grayLinkFraction * full;
        if (t >= full)
            t = full - 1.0L;
        _grayThreshold = (std::uint64_t)t;
        if (_grayThreshold == 0 && _cfg.grayLinkFraction > 0.0)
            _grayThreshold = 1;
    }

    for (unsigned n = 0; n < num_nodes; ++n) {
        if (_cfg.stallNodeFraction > 0.0)
            _stalled[n] = rng.chance(_cfg.stallNodeFraction) ? 1 : 0;
        _stallPhase[n] =
            _cfg.stallPeriod ? rng.below(_cfg.stallPeriod) : 0;
        _dirPhase[n] = _cfg.dirPressurePeriod
                           ? rng.below(_cfg.dirPressurePeriod)
                           : 0;
    }
    // A stall fraction that rounded every node out of the set would
    // silently disable the mechanism; force at least one stalled node
    // so armed configs always perturb something.
    if (_cfg.stallNodeFraction > 0.0 && num_nodes > 0) {
        bool any = false;
        for (std::uint8_t s : _stalled)
            any = any || s;
        if (!any)
            _stalled[rng.below(num_nodes)] = 1;
    }

    if (_cfg.hotspotExtraLatency > 0 && num_nodes > 0) {
        _hotspot = _cfg.hotspotNode != invalidNode
                       ? _cfg.hotspotNode
                       : (NodeId)rng.below(num_nodes);
        _hotspotPhase = _cfg.hotspotPeriod
                            ? rng.below(_cfg.hotspotPeriod)
                            : 0;
    }
}

bool
FaultPlan::inWindow(Tick now, Tick phase, Tick period, Tick duration)
{
    return period != 0 && duration != 0 &&
           (now + phase) % period < duration;
}

std::uint64_t
FaultPlan::mix64(std::uint64_t x)
{
    // SplitMix64 finalizer: a cheap, well-mixed hash.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

std::uint64_t
FaultPlan::linkHash(NodeId src, NodeId dst) const
{
    const std::uint64_t key =
        (std::uint64_t(src) << 32) | std::uint64_t(dst);
    return mix64(_graySalt ^ key);
}

bool
FaultPlan::linkIsGray(NodeId src, NodeId dst) const
{
    return _grayThreshold != 0 && linkHash(src, dst) < _grayThreshold;
}

Tick
FaultPlan::extraLatency(NodeId src, NodeId dst, Tick now) const
{
    Tick extra = 0;
    if (_grayThreshold != 0) {
        const std::uint64_t h = linkHash(src, dst);
        if (h < _grayThreshold) {
            // Per-link window phase, derived from the same hash so the
            // plan stores nothing per link.
            const Tick phase =
                mix64(h ^ 0x5851f42d4c957f2dull) % _cfg.grayPeriod;
            if (inWindow(now, phase, _cfg.grayPeriod,
                         _cfg.grayDuration))
                extra += _cfg.grayExtraLatency;
        }
    }
    if (dst == _hotspot &&
        inWindow(now, _hotspotPhase, _cfg.hotspotPeriod,
                 _cfg.hotspotDuration))
        extra += _cfg.hotspotExtraLatency;
    return extra;
}

Tick
FaultPlan::stallClearTick(NodeId node, Tick at) const
{
    if (node >= _stalled.size() || !_stalled[node])
        return at;
    const Tick off = (at + _stallPhase[node]) % _cfg.stallPeriod;
    if (off >= _cfg.stallDuration)
        return at;
    return at + (_cfg.stallDuration - off);
}

unsigned
FaultPlan::dirWaysLimit(NodeId node, Tick now) const
{
    if (_cfg.dirPressureWays == 0 || node >= _dirPhase.size())
        return 0;
    return inWindow(now, _dirPhase[node], _cfg.dirPressurePeriod,
                    _cfg.dirPressureDuration)
               ? _cfg.dirPressureWays
               : 0;
}

std::string
FaultPlan::describe() const
{
    unsigned stalled = 0;
    for (std::uint8_t s : _stalled)
        stalled += s;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "faults: gray=%.0f%%/+%llu stallNodes=%u/%u "
                  "hotspot=%d/+%llu dirWays=%u",
                  _cfg.grayLinkFraction * 100.0,
                  (unsigned long long)_cfg.grayExtraLatency, stalled,
                  _numNodes,
                  _hotspot == invalidNode ? -1 : int(_hotspot),
                  (unsigned long long)_cfg.hotspotExtraLatency,
                  _cfg.dirPressureWays);
    return buf;
}

} // namespace pcsim
