#include "src/net/message.hh"

#include <sstream>

namespace pcsim
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::ReqShared: return "ReqShared";
      case MsgType::ReqExcl: return "ReqExcl";
      case MsgType::ReqUpgrade: return "ReqUpgrade";
      case MsgType::WritebackM: return "WritebackM";
      case MsgType::RespSharedData: return "RespSharedData";
      case MsgType::RespExclData: return "RespExclData";
      case MsgType::RespUpgradeAck: return "RespUpgradeAck";
      case MsgType::WritebackAck: return "WritebackAck";
      case MsgType::Nack: return "Nack";
      case MsgType::NackNotHome: return "NackNotHome";
      case MsgType::HomeHint: return "HomeHint";
      case MsgType::Inval: return "Inval";
      case MsgType::IntervDowngrade: return "IntervDowngrade";
      case MsgType::IntervTransfer: return "IntervTransfer";
      case MsgType::InvalAck: return "InvalAck";
      case MsgType::SharedResp: return "SharedResp";
      case MsgType::SharedWriteback: return "SharedWriteback";
      case MsgType::ExclResp: return "ExclResp";
      case MsgType::TransferAck: return "TransferAck";
      case MsgType::IntervNack: return "IntervNack";
      case MsgType::Delegate: return "Delegate";
      case MsgType::Undele: return "Undele";
      case MsgType::Update: return "Update";
      case MsgType::UpdGrant: return "UpdGrant";
      case MsgType::UpdateWB: return "UpdateWB";
      case MsgType::UpdateDrop: return "UpdateDrop";
      default:
        // 23..30 are reserved so MsgType stays value-aliased with
        // PEvent across the synthetic local-event block.
        return static_cast<unsigned>(t) >= 23 &&
                       static_cast<unsigned>(t) <= 30
                   ? "Reserved"
                   : "Unknown";
    }
}

bool
msgCarriesData(MsgType t)
{
    switch (t) {
      case MsgType::WritebackM:
      case MsgType::RespSharedData:
      case MsgType::RespExclData:
      case MsgType::SharedResp:
      case MsgType::SharedWriteback:
      case MsgType::ExclResp:
      case MsgType::Delegate:
      case MsgType::Undele:
      case MsgType::Update:
      case MsgType::UpdGrant:
      case MsgType::UpdateWB:
        return true;
      default:
        return false;
    }
}

std::uint32_t
Message::sizeBytes() const
{
    // NUMALink-4 minimum packet is 32 bytes; data packets add a full
    // 128-byte coherence line. Undele may be header-only when clean,
    // but we conservatively always charge the data payload for it.
    return msgCarriesData(type) ? 32 + 128 : 32;
}

std::string
Message::toString() const
{
    std::ostringstream os;
    os << msgTypeName(type) << " addr=0x" << std::hex << addr << std::dec
       << " src=" << src << " dst=" << dst << " req=" << requester
       << " v=" << version;
    return os.str();
}

} // namespace pcsim
