/**
 * @file
 * NUMALink-4-style fat-tree topology.
 *
 * Non-leaf routers have eight children (Section 3.1). For the default
 * 16-node system that means two leaf routers under one root: traffic
 * between nodes on the same leaf router crosses 1 router hop, traffic
 * across leaves crosses 2. Latency per hop is configurable (Table 1:
 * 100 processor cycles = 50 ns at 2 GHz; Figure 10 sweeps 25-200 ns).
 */

#ifndef PCSIM_NET_TOPOLOGY_HH
#define PCSIM_NET_TOPOLOGY_HH

#include <cstdint>

#include "src/sim/logging.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/** Radix-8 fat tree over @c numNodes leaves. */
class FatTreeTopology
{
  public:
    explicit FatTreeTopology(unsigned num_nodes, unsigned radix = 8)
        : _numNodes(num_nodes), _radix(radix)
    {
        if (num_nodes == 0)
            fatal("topology needs at least one node");
        if (num_nodes >= invalidNode)
            fatal("topology: %u leaves exceed the NodeId range",
                  num_nodes);
        if (radix < 2)
            fatal("router radix must be >= 2");
        // Any leaf count is legal, not just powers of the radix: a
        // partially filled last router level simply leaves ports
        // unused, and hops() only ever divides by the radix.
        // Depth of the tree: number of router levels needed so that
        // radix^depth >= numNodes.
        _depth = 1;
        std::uint64_t reach = _radix;
        while (reach < _numNodes) {
            reach *= _radix;
            ++_depth;
        }
    }

    unsigned numNodes() const { return _numNodes; }
    unsigned radix() const { return _radix; }
    unsigned depth() const { return _depth; }

    /**
     * Number of router-to-router / node-to-router hops a message
     * traverses from @p src to @p dst. Local delivery is 0 hops;
     * nodes under the same leaf router are 1 hop apart; each extra
     * tree level adds 1 hop (up through the common ancestor).
     */
    unsigned
    hops(NodeId src, NodeId dst) const
    {
        if (src == dst)
            return 0;
        // Find the level of the lowest common ancestor: divide both
        // ids by radix until they match.
        unsigned level = 1;
        std::uint64_t a = src / _radix;
        std::uint64_t b = dst / _radix;
        while (a != b) {
            a /= _radix;
            b /= _radix;
            ++level;
        }
        return level;
    }

    /** Largest hop count possible in this topology. */
    unsigned maxHops() const { return _depth; }

    /** Fewest hops any message between two *different leaf routers*
     *  can traverse: 2 (up to the parent, down again) whenever the
     *  system spans more than one leaf, else there is no cross-leaf
     *  pair and the minimum degenerates to hops between distinct
     *  nodes (1) or zero for a single node. */
    unsigned
    minCrossLeafHops() const
    {
        if (_numNodes > _radix)
            return 2;
        return _numNodes > 1 ? 1 : 0;
    }

    /** Network latency floor for any message between nodes on
     *  different leaf routers, given the per-hop latency. This is the
     *  conservative-parallel lookahead source: with leaf-aligned
     *  shards, every cross-shard message spends at least this long in
     *  router hops before it can arrive. */
    Tick
    minCrossLeafLatencyTicks(Tick hop_latency) const
    {
        return hop_latency * minCrossLeafHops();
    }

  private:
    unsigned _numNodes;
    unsigned _radix;
    unsigned _depth;
};

} // namespace pcsim

#endif // PCSIM_NET_TOPOLOGY_HH
