/**
 * @file
 * Deterministic fault injection for the interconnect and the home
 * directory.
 *
 * A FaultPlan perturbs a run WITHOUT violating the lossless
 * point-to-point-ordered network contract the protocol relies on
 * (see DESIGN.md "Fault model & robustness"): faults only ADD latency
 * (gray links, NI stalls, hot-spot bursts) or shrink home-side
 * resources (directory-cache pressure). Nothing is dropped,
 * duplicated or reordered: extra per-link latency is applied before
 * ejection is serialized through the destination NI, whose next-free
 * bookkeeping is monotone in injection order, so same-(src,dst)
 * messages still deliver in order.
 *
 * Everything is derived from the per-job seed at construction (salted
 * hash per link/node plus per-entity window phases), so a faulted run
 * is bit-reproducible at any worker-thread count.
 */

#ifndef PCSIM_NET_FAULTS_HH
#define PCSIM_NET_FAULTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/random.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/**
 * Fault-injection knobs (ProtocolConfig::faults). All mechanisms are
 * windowed: an affected entity degrades for `duration` ticks out of
 * every `period`, with a deterministic per-entity phase so windows do
 * not align across the machine.
 */
struct FaultConfig
{
    /** Master switch; when false the plan is never built and runs are
     *  byte-identical to pre-fault builds. */
    bool enabled = false;

    /** @name Gray links: a fraction of ordered (src,dst) links gains
     *  extra wire latency during their degradation windows. */
    /// @{
    double grayLinkFraction = 0.0;
    Tick grayExtraLatency = 0;
    Tick grayPeriod = 40000;
    Tick grayDuration = 12000;
    /// @}

    /** @name NI stalls: a fraction of nodes periodically pauses its
     *  network interface (both injection and ejection). */
    /// @{
    double stallNodeFraction = 0.0;
    Tick stallPeriod = 50000;
    Tick stallDuration = 6000;
    /// @}

    /** @name Hot spot: congestion bursts targeting one home node --
     *  every message ejecting there pays extra latency during the
     *  window. invalidNode = pick the target from the seed. */
    /// @{
    NodeId hotspotNode = invalidNode;
    Tick hotspotExtraLatency = 0;
    Tick hotspotPeriod = 30000;
    Tick hotspotDuration = 9000;
    /// @}

    /** @name Directory-cache pressure: during the window a home
     *  refuses directory-cache fills into sets already holding
     *  `dirPressureWays` entries (temporarily shrunk associativity),
     *  forcing NACK storms and local re-handle retries. 0 = off. */
    /// @{
    unsigned dirPressureWays = 0;
    Tick dirPressurePeriod = 60000;
    Tick dirPressureDuration = 15000;
    /// @}

    /** Any mechanism armed (independent of `enabled`)? */
    bool
    anyMechanism() const
    {
        return (grayLinkFraction > 0.0 && grayExtraLatency > 0) ||
               stallNodeFraction > 0.0 || hotspotExtraLatency > 0 ||
               dirPressureWays > 0;
    }

    /**
     * Sanity-check the knobs against the machine they will perturb.
     * @return "" when valid, else a description of the first problem.
     */
    std::string validateError(unsigned num_nodes,
                              std::size_t dir_cache_ways) const;
};

/**
 * The realized plan for one run: which links are gray, which nodes
 * stall, where the hot spot is, and every window phase. Pure
 * (side-effect-free) query methods keep the network and directory hot
 * paths free of RNG draws.
 */
class FaultPlan
{
  public:
    /** Build from @p cfg for a @p num_nodes machine; @p rng is a
     *  stream forked from the run's root seed. */
    FaultPlan(const FaultConfig &cfg, unsigned num_nodes, Rng rng);

    const FaultConfig &config() const { return _cfg; }

    /** Gray links or a hot spot configured (extraLatency can fire)? */
    bool
    anyLatencyFaults() const
    {
        return _grayThreshold != 0 || _cfg.hotspotExtraLatency != 0;
    }

    /** Extra wire latency for a message injected onto (src,dst) at
     *  @p now (gray-link window plus hot-spot window). */
    Tick extraLatency(NodeId src, NodeId dst, Tick now) const;

    /** Earliest tick >= @p at when @p node's NI is not stalled. */
    Tick stallClearTick(NodeId node, Tick at) const;

    /** Directory-cache fill limit for @p node at @p now: 0 = no
     *  pressure, else the temporarily shrunk effective way count. */
    unsigned dirWaysLimit(NodeId node, Tick now) const;

    /** The hot-spot target (invalidNode when the burst is off). */
    NodeId hotspotNode() const { return _hotspot; }

    /** Is the ordered link (src,dst) gray? */
    bool linkIsGray(NodeId src, NodeId dst) const;

    /** One-line human-readable summary for logs. */
    std::string describe() const;

  private:
    static bool inWindow(Tick now, Tick phase, Tick period,
                         Tick duration);
    static std::uint64_t mix64(std::uint64_t x);
    std::uint64_t linkHash(NodeId src, NodeId dst) const;

    FaultConfig _cfg;
    unsigned _numNodes;

    std::uint64_t _graySalt = 0;
    std::uint64_t _grayThreshold = 0; ///< fraction scaled to 2^64

    std::vector<std::uint8_t> _stalled; ///< per-node stall membership
    std::vector<Tick> _stallPhase;

    NodeId _hotspot = invalidNode;
    Tick _hotspotPhase = 0;

    std::vector<Tick> _dirPhase;
};

} // namespace pcsim

#endif // PCSIM_NET_FAULTS_HH
