/**
 * @file
 * The interconnect: message delivery with per-hop latency and hub port
 * (network interface) contention.
 *
 * Per Section 3.1 we do not model contention inside routers, but do
 * model hub port contention: each node's NI serializes injection and
 * ejection at a configurable bandwidth. Point-to-point ordering per
 * (src,dst) pair is preserved, which the protocol's writeback-race
 * handling relies on (see DESIGN.md).
 *
 * Messages with src == dst model hub-internal transfers (e.g. the
 * processor-side controller talking to the local directory): they are
 * delivered after a small local latency and are NOT counted as network
 * traffic.
 */

#ifndef PCSIM_NET_NETWORK_HH
#define PCSIM_NET_NETWORK_HH

#include <cstdint>
#include <vector>

#include "src/net/message.hh"
#include "src/net/topology.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/pool.hh"
#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace pcsim
{

class FaultPlan;

/** Configuration for the interconnect. */
struct NetworkConfig
{
    /** Cycles per router hop (Table 1: 100 CPU cycles = 50 ns). */
    Tick hopLatency = 100;
    /** NI bandwidth in bytes per CPU cycle (16 B per 500 MHz hub
     *  cycle = 4 B per 2 GHz CPU cycle). */
    std::uint32_t niBytesPerCycle = 4;
    /** Hub-internal transfer latency for src == dst messages. */
    Tick localLatency = 16;
};

/**
 * Event-driven interconnect connecting all node hubs.
 */
class Network : public SimObject
{
  public:
    Network(EventQueue &eq, unsigned num_nodes, NetworkConfig cfg = {});

    /** Attach the hub that receives messages for @p node. */
    void registerHandler(NodeId node, MessageHandler *handler);

    /** Inject @p msg; it will be delivered to msg.dst's handler. */
    void send(const Message &msg);

    /** @name Pooled injection path
     *
     * Senders that build a message for immediate or deferred injection
     * can acquire pooled storage, fill it in place, and hand it back
     * via sendAcquired(). The delivery closure then captures only a
     * pointer (24 bytes instead of a 64-byte Message copy) and the
     * storage is recycled after the handler runs.
     */
    /// @{
    Message *acquireMessage() { return _msgPool.acquire(); }
    void releaseMessage(Message *pm) { _msgPool.release(pm); }
    /** Inject a message previously obtained from acquireMessage().
     *  Ownership passes to the network; storage is recycled after
     *  delivery. */
    void sendAcquired(Message *pm);
    /// @}

    const Pool<Message>::Stats &poolStats() const
    {
        return _msgPool.stats();
    }

    const FatTreeTopology &topology() const { return _topo; }
    const NetworkConfig &config() const { return _cfg; }

    /** @name Fault injection (src/net/faults.hh).
     *
     * A run with faults enabled installs its FaultPlan here; the
     * network consults it for NI-stall windows and per-link extra
     * latency. Faults only add delay before the destination NI's
     * ejection booking, so per-(src,dst) ordering and losslessness
     * are preserved. Null (the default) is the fault-free fast path.
     */
    /// @{
    void setFaultPlan(const FaultPlan *plan) { _faults = plan; }
    const FaultPlan *faultPlan() const { return _faults; }
    /** Remote messages that picked up any fault-induced delay. */
    std::uint64_t faultDelayedMessages() const { return _faultDelayed; }
    /** Total fault-induced delay ticks across those messages. */
    std::uint64_t faultExtraTicks() const { return _faultExtraTicks; }
    /// @}

    /** @name Traffic statistics (remote messages only). */
    /// @{
    std::uint64_t numMessages() const { return _numMessages; }
    std::uint64_t numBytes() const { return _numBytes; }
    std::uint64_t numLocalMessages() const { return _numLocal; }
    std::uint64_t numByType(MsgType t) const
    {
        return _perType[static_cast<std::size_t>(t)];
    }
    const Histogram &hopHistogram() const { return _hopHist; }
    /// @}

    void resetStats();

  private:
    NetworkConfig _cfg;
    FatTreeTopology _topo;
    std::vector<MessageHandler *> _handlers;

    /** Per-node NI next-free times (egress = injection, ingress =
     *  ejection). */
    std::vector<Tick> _egressFree;
    std::vector<Tick> _ingressFree;

    std::uint64_t _nextMsgId = 1;
    std::uint64_t _numMessages = 0;
    std::uint64_t _numBytes = 0;
    std::uint64_t _numLocal = 0;
    std::vector<std::uint64_t> _perType;
    Histogram _hopHist;

    const FaultPlan *_faults = nullptr;
    std::uint64_t _faultDelayed = 0;
    std::uint64_t _faultExtraTicks = 0;

    /** Recycled storage for in-flight messages. */
    Pool<Message> _msgPool;
};

} // namespace pcsim

#endif // PCSIM_NET_NETWORK_HH
