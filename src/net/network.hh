/**
 * @file
 * The interconnect: message delivery with per-hop latency and hub port
 * (network interface) contention.
 *
 * Per Section 3.1 we do not model contention inside routers, but do
 * model hub port contention: each node's NI serializes injection and
 * ejection at a configurable bandwidth. Point-to-point ordering per
 * (src,dst) pair is preserved, which the protocol's writeback-race
 * handling relies on (see DESIGN.md).
 *
 * Messages with src == dst model hub-internal transfers (e.g. the
 * processor-side controller talking to the local directory): they are
 * delivered after a small local latency and are NOT counted as network
 * traffic.
 *
 * Timing model (identical under the sequential and parallel kernels):
 * injection is booked at the source NI when the message is sent, on
 * the sender's shard thread; the in-flight message then rides a
 * per-destination-node arrival heap ordered by (arrive, src, seq),
 * and ejection is booked when the destination's phase-0 "drain" event
 * runs at the arrival tick. Ejection booking therefore depends only
 * on the *content-ordered* arrival sequence at that node -- never on
 * the global order sends happened to execute in -- which is what
 * makes the parallel kernel byte-identical to the sequential oracle.
 * Cross-shard sends park in per-(src-shard, dst-shard) channels that
 * the destination worker flushes into its heaps at window barriers.
 */

#ifndef PCSIM_NET_NETWORK_HH
#define PCSIM_NET_NETWORK_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/net/message.hh"
#include "src/net/topology.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/pool.hh"
#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace pcsim
{

class FaultPlan;
class SimKernel;

/** Configuration for the interconnect. */
struct NetworkConfig
{
    /** Cycles per router hop (Table 1: 100 CPU cycles = 50 ns). */
    Tick hopLatency = 100;
    /** NI bandwidth in bytes per CPU cycle (16 B per 500 MHz hub
     *  cycle = 4 B per 2 GHz CPU cycle). */
    std::uint32_t niBytesPerCycle = 4;
    /** Hub-internal transfer latency for src == dst messages. */
    Tick localLatency = 16;
};

/**
 * Event-driven interconnect connecting all node hubs.
 */
class Network : public SimObject
{
  public:
    Network(EventQueue &eq, unsigned num_nodes, NetworkConfig cfg = {});

    /**
     * Route deliveries through a sharded kernel: per-node scheduling
     * moves to each node's shard queue, message storage and traffic
     * counters split into per-shard banks, and cross-shard sends are
     * exchanged at the kernel's window barriers. Without this call
     * the network behaves exactly as before on the single queue
     * passed to the constructor (tests drive it that way).
     */
    void attachKernel(SimKernel &kernel);

    /** Attach the hub that receives messages for @p node. */
    void registerHandler(NodeId node, MessageHandler *handler);

    /** Inject @p msg; it will be delivered to msg.dst's handler. */
    void send(const Message &msg);

    /** @name Pooled injection path
     *
     * Senders that build a message for immediate or deferred injection
     * can acquire pooled storage, fill it in place, and hand it back
     * via sendAcquired(). The delivery closure then captures only a
     * pointer (24 bytes instead of a by-value Message copy) and the
     * storage is recycled after the handler runs. Pools are per
     * shard: acquire takes from the calling shard's pool and release
     * returns to the calling shard's pool (slabs live until the
     * network dies, so cross-shard frees are safe).
     */
    /// @{
    Message *acquireMessage()
    {
        return _pools[callerShard()]->acquire();
    }
    void releaseMessage(Message *pm)
    {
        _pools[callerShard()]->release(pm);
    }
    /** Inject a message previously obtained from acquireMessage().
     *  Ownership passes to the network; storage is recycled after
     *  delivery. */
    void sendAcquired(Message *pm);
    /// @}

    /** Pool recycling counters summed across shards (acquire counts
     *  are content-determined; reuse counts are shard-layout
     *  dependent and only serialized under the timing opt-in). */
    Pool<Message>::Stats poolStats() const;

    const FatTreeTopology &topology() const { return _topo; }
    const NetworkConfig &config() const { return _cfg; }

    /** @name Fault injection (src/net/faults.hh).
     *
     * A run with faults enabled installs its FaultPlan here; the
     * network consults it for NI-stall windows and per-link extra
     * latency. Faults only add delay before the destination NI's
     * ejection booking, so per-(src,dst) ordering and losslessness
     * are preserved. Null (the default) is the fault-free fast path.
     */
    /// @{
    void setFaultPlan(const FaultPlan *plan);
    const FaultPlan *faultPlan() const { return _faults; }
    /** Remote messages that picked up any fault-induced delay. */
    std::uint64_t faultDelayedMessages() const;
    /** Total fault-induced delay ticks across those messages. */
    std::uint64_t faultExtraTicks() const;
    /// @}

    /** @name Traffic statistics (remote messages only).
     *
     * Counters accumulate into per-shard banks (send-side counters in
     * the sender's bank, ejection-side in the receiver's) and are
     * summed on read, so totals are independent of the shard layout.
     */
    /// @{
    std::uint64_t numMessages() const;
    std::uint64_t numBytes() const;
    std::uint64_t numLocalMessages() const;
    std::uint64_t numByType(MsgType t) const;
    Histogram hopHistogram() const;
    /** Remote messages that crossed a shard boundary (0 under the
     *  sequential kernel; host-telemetry, timing-gated). */
    std::uint64_t crossShardMessages() const;
    /// @}

    void resetStats();

    /** Drain every (src shard -> @p dst_shard) channel into the
     *  destination nodes' arrival heaps; runs on @p dst_shard's
     *  worker at a window barrier (the kernel's flush hook). */
    void flushShard(unsigned dst_shard);

  private:
    /** One remote message in flight between injection and ejection. */
    struct RouteEntry
    {
        Tick arrive;
        Tick occupancy;
        /** Source-side fault delay (stall + gray-link), carried so
         *  the whole message counts once, at ejection. */
        Tick faultDelay;
        /** Per-source sequence; with the source id it breaks
         *  same-tick arrival ties deterministically. */
        std::uint64_t seq;
        NodeId src;
        Message *pm;
    };

    /** Min-heap order on (arrive, src, seq). */
    struct RouteLater
    {
        bool
        operator()(const RouteEntry &a, const RouteEntry &b) const
        {
            if (a.arrive != b.arrive)
                return a.arrive > b.arrive;
            if (a.src != b.src)
                return a.src > b.src;
            return a.seq > b.seq;
        }
    };

    using ArrivalHeap =
        std::priority_queue<RouteEntry, std::vector<RouteEntry>,
                            RouteLater>;

    /** Per-shard statistics bank. */
    struct Bank
    {
        std::uint64_t numMessages = 0;
        std::uint64_t numBytes = 0;
        std::uint64_t numLocal = 0;
        std::uint64_t faultDelayed = 0;
        std::uint64_t faultExtraTicks = 0;
        std::uint64_t crossShard = 0;
        std::vector<std::uint64_t> perType;
        Histogram hopHist;

        Bank()
            : perType(static_cast<std::size_t>(MsgType::NumMsgTypes),
                      0),
              hopHist(8)
        {
        }
        void reset();
    };

    unsigned callerShard() const;
    EventQueue &queueOf(NodeId node) { return *_nodeQueue[node]; }
    void insertArrival(const RouteEntry &e);
    void drainArrivals(NodeId dst);

    NetworkConfig _cfg;
    FatTreeTopology _topo;
    std::vector<MessageHandler *> _handlers;

    /** Per-node shard queue (all point at the constructor queue until
     *  a kernel is attached). */
    std::vector<EventQueue *> _nodeQueue;
    std::vector<unsigned> _shardOf;
    unsigned _numShards = 1;

    /** Per-node NI next-free times (egress = injection, ingress =
     *  ejection); each entry is only touched by its node's shard. */
    std::vector<Tick> _egressFree;
    std::vector<Tick> _ingressFree;

    /** Per-source message sequence numbers (ids are (src, seq) so
     *  numbering never depends on the global send interleaving). */
    std::vector<std::uint64_t> _srcSeq;

    /** Per-destination-node in-flight arrivals and the set of ticks
     *  with an armed phase-0 drain event. */
    std::vector<ArrivalHeap> _arrivals;
    std::vector<std::unordered_set<Tick>> _drainArmed;

    /** Cross-shard channels, indexed src_shard * S + dst_shard; the
     *  source worker appends during a window, the destination worker
     *  drains at the next barrier (never concurrently). */
    std::vector<std::vector<RouteEntry>> _channels;

    /** Per-(src,dst) last arrival tick, maintained only when the
     *  fault plan can inject extra link latency (the one mechanism
     *  that can reorder arrivals); clamps arrivals monotone so
     *  point-to-point FIFO survives faults. */
    std::vector<std::unordered_map<NodeId, Tick>> _lastArrive;
    bool _fifoClamp = false;

    std::vector<Bank> _banks;

    const FaultPlan *_faults = nullptr;

    /** Recycled storage for in-flight messages, one pool per shard. */
    std::vector<std::unique_ptr<Pool<Message>>> _pools;
};

} // namespace pcsim

#endif // PCSIM_NET_NETWORK_HH
