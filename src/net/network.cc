#include "src/net/network.hh"

#include <algorithm>

#include "src/net/faults.hh"
#include "src/sim/kernel.hh"
#include "src/sim/logging.hh"

namespace pcsim
{

Network::Network(EventQueue &eq, unsigned num_nodes, NetworkConfig cfg)
    : SimObject(eq, "network"),
      _cfg(cfg),
      _topo(num_nodes),
      _handlers(num_nodes, nullptr),
      _nodeQueue(num_nodes, &eq),
      _shardOf(num_nodes, 0),
      _egressFree(num_nodes, 0),
      _ingressFree(num_nodes, 0),
      _srcSeq(num_nodes, 0),
      _arrivals(num_nodes),
      _drainArmed(num_nodes),
      _banks(1)
{
    _pools.emplace_back(std::make_unique<Pool<Message>>());
}

void
Network::attachKernel(SimKernel &kernel)
{
    const unsigned shards = kernel.numShards();
    _numShards = shards;
    for (NodeId n = 0; n < _handlers.size(); ++n) {
        _shardOf[n] = kernel.shardOf(n);
        _nodeQueue[n] = &kernel.queueForNode(n);
    }
    _channels.assign(std::size_t(shards) * shards, {});
    _banks.resize(shards);
    while (_pools.size() < shards)
        _pools.emplace_back(std::make_unique<Pool<Message>>());
    kernel.setFlushHook(
        [this](unsigned dst_shard) { flushShard(dst_shard); });
}

unsigned
Network::callerShard() const
{
    return currentShardId();
}

void
Network::registerHandler(NodeId node, MessageHandler *handler)
{
    if (node >= _handlers.size())
        panic("registerHandler: node %u out of range", node);
    _handlers[node] = handler;
}

void
Network::send(const Message &msg)
{
    Message *pm = acquireMessage();
    *pm = msg;
    sendAcquired(pm);
}

void
Network::setFaultPlan(const FaultPlan *plan)
{
    _faults = plan;
    // Extra link latency is the only mechanism that can reorder
    // same-(src,dst) arrivals; arm the FIFO clamp only then so the
    // fault-free fast path stays map-free.
    _fifoClamp = plan && plan->anyLatencyFaults();
    if (_fifoClamp && _lastArrive.empty())
        _lastArrive.resize(_handlers.size());
}

void
Network::sendAcquired(Message *pm)
{
    Message &msg = *pm;
    if (msg.src >= _handlers.size() || msg.dst >= _handlers.size())
        panic("send: bad endpoints %u -> %u", msg.src, msg.dst);
    const NodeId src = msg.src;
    const NodeId dst = msg.dst;
    MessageHandler *handler = _handlers[dst];
    if (!handler)
        panic("send: no handler registered for node %u", dst);

    const Tick now = _nodeQueue[src]->curTick();
    const std::uint64_t seq = ++_srcSeq[src];
    msg.msgId = (std::uint64_t(src) << 40) | seq;

    if (src == dst) {
        // Hub-internal transfer: small fixed latency, no NI occupancy,
        // not network traffic.
        ++_banks[_shardOf[src]].numLocal;
        const Tick deliver = now + _cfg.localLatency;
        PCSIM_DPRINTF(DebugNet, now, "net: %s deliver@%llu",
                      msg.toString().c_str(),
                      (unsigned long long)deliver);
        _nodeQueue[src]->schedule(deliver, [this, handler, pm]() {
            handler->handleMessage(*pm);
            releaseMessage(pm);
        });
        return;
    }

    const std::uint32_t bytes = msg.sizeBytes();
    const Tick occupancy =
        std::max<Tick>(1, bytes / _cfg.niBytesPerCycle);
    const unsigned hops = _topo.hops(src, dst);

    // Serialize injection at the source NI; a fault-injected stall
    // window pauses injection entirely.
    Tick inject = std::max(now, _egressFree[src]);
    Tick fault_delay = 0;
    if (_faults) {
        const Tick clear = _faults->stallClearTick(src, inject);
        fault_delay += clear - inject;
        inject = clear;
    }
    _egressFree[src] = inject + occupancy;

    // Wire latency across the fat tree, plus any gray-link / hot-spot
    // degradation. The fault delay accumulated so far is carried with
    // the message and counted once at ejection.
    Tick extra = 0;
    if (_faults)
        extra = _faults->extraLatency(src, dst, inject);
    fault_delay += extra;
    Tick arrive = inject + occupancy + _cfg.hopLatency * hops + extra;

    // NI serialization alone keeps per-(src,dst) arrivals monotone;
    // fault-injected extra latency can reorder them, so clamp the
    // arrival tick to preserve point-to-point FIFO (ties then break
    // by per-source sequence in the arrival heap).
    if (_fifoClamp) {
        Tick &last = _lastArrive[src][dst];
        if (arrive < last)
            arrive = last;
        last = arrive;
    }

    Bank &bank = _banks[_shardOf[src]];
    ++bank.numMessages;
    bank.numBytes += bytes;
    ++bank.perType[static_cast<std::size_t>(msg.type)];
    bank.hopHist.sample(hops);

    PCSIM_DPRINTF(DebugNet, now, "net: %s arrive@%llu",
                  msg.toString().c_str(), (unsigned long long)arrive);

    const RouteEntry e{arrive, occupancy, fault_delay, seq, src, pm};
    const unsigned dst_shard = _shardOf[dst];
    if (dst_shard == _shardOf[src]) {
        insertArrival(e);
    } else {
        ++bank.crossShard;
        _channels[std::size_t(_shardOf[src]) * _numShards + dst_shard]
            .push_back(e);
    }
}

void
Network::insertArrival(const RouteEntry &e)
{
    const NodeId dst = e.pm->dst;
    _arrivals[dst].push(e);
    // One phase-0 drain per distinct (node, arrival tick): the event
    // count is a function of content, never of insertion order.
    if (_drainArmed[dst].insert(e.arrive).second) {
        _nodeQueue[dst]->schedulePhase0(
            e.arrive, [this, dst]() { drainArrivals(dst); });
    }
}

void
Network::drainArrivals(NodeId dst)
{
    EventQueue &q = *_nodeQueue[dst];
    const Tick now = q.curTick();
    _drainArmed[dst].erase(now);
    ArrivalHeap &heap = _arrivals[dst];
    MessageHandler *handler = _handlers[dst];
    while (!heap.empty() && heap.top().arrive == now) {
        const RouteEntry e = heap.top();
        heap.pop();

        // Serialize ejection at the destination NI (also stallable)
        // in (arrive, src, seq) order -- the content order, however
        // the sends interleaved.
        Tick eject = std::max(e.arrive, _ingressFree[dst]);
        Tick fault_delay = e.faultDelay;
        if (_faults) {
            const Tick clear = _faults->stallClearTick(dst, eject);
            fault_delay += clear - eject;
            eject = clear;
        }
        _ingressFree[dst] = eject + e.occupancy;
        const Tick deliver = eject + e.occupancy;

        if (fault_delay) {
            Bank &bank = _banks[_shardOf[dst]];
            ++bank.faultDelayed;
            bank.faultExtraTicks += fault_delay;
        }

        Message *pm = e.pm;
        PCSIM_DPRINTF(DebugNet, now, "net: %s deliver@%llu",
                      pm->toString().c_str(),
                      (unsigned long long)deliver);
        q.schedule(deliver, [this, handler, pm]() {
            handler->handleMessage(*pm);
            releaseMessage(pm);
        });
    }
}

void
Network::flushShard(unsigned dst_shard)
{
    for (unsigned src_shard = 0; src_shard < _numShards; ++src_shard) {
        auto &ch =
            _channels[std::size_t(src_shard) * _numShards + dst_shard];
        for (const RouteEntry &e : ch)
            insertArrival(e);
        ch.clear();
    }
}

Pool<Message>::Stats
Network::poolStats() const
{
    Pool<Message>::Stats sum;
    for (const auto &p : _pools) {
        const Pool<Message>::Stats &s = p->stats();
        sum.acquires += s.acquires;
        sum.reuses += s.reuses;
        sum.releases += s.releases;
        sum.slabs += s.slabs;
    }
    return sum;
}

std::uint64_t
Network::numMessages() const
{
    std::uint64_t n = 0;
    for (const Bank &b : _banks)
        n += b.numMessages;
    return n;
}

std::uint64_t
Network::numBytes() const
{
    std::uint64_t n = 0;
    for (const Bank &b : _banks)
        n += b.numBytes;
    return n;
}

std::uint64_t
Network::numLocalMessages() const
{
    std::uint64_t n = 0;
    for (const Bank &b : _banks)
        n += b.numLocal;
    return n;
}

std::uint64_t
Network::numByType(MsgType t) const
{
    std::uint64_t n = 0;
    for (const Bank &b : _banks)
        n += b.perType[static_cast<std::size_t>(t)];
    return n;
}

Histogram
Network::hopHistogram() const
{
    Histogram merged(8);
    for (const Bank &b : _banks)
        merged.merge(b.hopHist);
    return merged;
}

std::uint64_t
Network::crossShardMessages() const
{
    std::uint64_t n = 0;
    for (const Bank &b : _banks)
        n += b.crossShard;
    return n;
}

std::uint64_t
Network::faultDelayedMessages() const
{
    std::uint64_t n = 0;
    for (const Bank &b : _banks)
        n += b.faultDelayed;
    return n;
}

std::uint64_t
Network::faultExtraTicks() const
{
    std::uint64_t n = 0;
    for (const Bank &b : _banks)
        n += b.faultExtraTicks;
    return n;
}

void
Network::Bank::reset()
{
    numMessages = 0;
    numBytes = 0;
    numLocal = 0;
    faultDelayed = 0;
    faultExtraTicks = 0;
    crossShard = 0;
    std::fill(perType.begin(), perType.end(), 0);
    hopHist.reset();
}

void
Network::resetStats()
{
    for (Bank &b : _banks)
        b.reset();
}

} // namespace pcsim
