#include "src/net/network.hh"

#include <algorithm>

#include "src/net/faults.hh"
#include "src/sim/logging.hh"

namespace pcsim
{

Network::Network(EventQueue &eq, unsigned num_nodes, NetworkConfig cfg)
    : SimObject(eq, "network"),
      _cfg(cfg),
      _topo(num_nodes),
      _handlers(num_nodes, nullptr),
      _egressFree(num_nodes, 0),
      _ingressFree(num_nodes, 0),
      _perType(static_cast<std::size_t>(MsgType::NumMsgTypes), 0),
      _hopHist(8)
{
}

void
Network::registerHandler(NodeId node, MessageHandler *handler)
{
    if (node >= _handlers.size())
        panic("registerHandler: node %u out of range", node);
    _handlers[node] = handler;
}

void
Network::send(const Message &msg)
{
    Message *pm = _msgPool.acquire();
    *pm = msg;
    sendAcquired(pm);
}

void
Network::sendAcquired(Message *pm)
{
    Message &msg = *pm;
    if (msg.src >= _handlers.size() || msg.dst >= _handlers.size())
        panic("send: bad endpoints %u -> %u", msg.src, msg.dst);
    MessageHandler *handler = _handlers[msg.dst];
    if (!handler)
        panic("send: no handler registered for node %u", msg.dst);

    msg.msgId = _nextMsgId++;
    const Tick now = curTick();
    Tick deliver;

    if (msg.src == msg.dst) {
        // Hub-internal transfer: small fixed latency, no NI occupancy,
        // not network traffic.
        ++_numLocal;
        deliver = now + _cfg.localLatency;
    } else {
        const std::uint32_t bytes = msg.sizeBytes();
        const Tick occupancy =
            std::max<Tick>(1, bytes / _cfg.niBytesPerCycle);
        const unsigned hops = _topo.hops(msg.src, msg.dst);

        // Serialize injection at the source NI; a fault-injected
        // stall window pauses injection entirely.
        Tick inject = std::max(now, _egressFree[msg.src]);
        Tick fault_delay = 0;
        if (_faults) {
            const Tick clear =
                _faults->stallClearTick(msg.src, inject);
            fault_delay += clear - inject;
            inject = clear;
        }
        _egressFree[msg.src] = inject + occupancy;

        // Wire latency across the fat tree, plus any gray-link /
        // hot-spot degradation. Extra latency lands BEFORE the
        // destination NI booking below, so same-(src,dst) ordering is
        // untouched: ejection times are serialized through
        // _ingressFree in injection order regardless of the delay.
        Tick extra = 0;
        if (_faults)
            extra = _faults->extraLatency(msg.src, msg.dst, inject);
        fault_delay += extra;
        Tick arrive = inject + occupancy + _cfg.hopLatency * hops +
                      extra;

        // Serialize ejection at the destination NI (also stallable).
        Tick eject = std::max(arrive, _ingressFree[msg.dst]);
        if (_faults) {
            const Tick clear = _faults->stallClearTick(msg.dst, eject);
            fault_delay += clear - eject;
            eject = clear;
        }
        _ingressFree[msg.dst] = eject + occupancy;
        deliver = eject + occupancy;

        if (fault_delay) {
            ++_faultDelayed;
            _faultExtraTicks += fault_delay;
        }

        ++_numMessages;
        _numBytes += bytes;
        ++_perType[static_cast<std::size_t>(msg.type)];
        _hopHist.sample(hops);
    }

    PCSIM_DPRINTF(DebugNet, now, "net: %s deliver@%llu",
                  msg.toString().c_str(), (unsigned long long)deliver);

    _eq.schedule(deliver, [this, handler, pm]() {
        handler->handleMessage(*pm);
        _msgPool.release(pm);
    });
}

void
Network::resetStats()
{
    _numMessages = 0;
    _numBytes = 0;
    _numLocal = 0;
    std::fill(_perType.begin(), _perType.end(), 0);
    _hopHist.reset();
    _faultDelayed = 0;
    _faultExtraTicks = 0;
}

} // namespace pcsim
