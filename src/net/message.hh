/**
 * @file
 * Coherence message definitions for the pcsim interconnect.
 *
 * The message vocabulary covers the base SGI-Origin-style directory
 * write-invalidate protocol plus the HPCA'07 extensions: directory
 * delegation (DELEGATE / UNDELE / not-home NACKs) and speculative
 * updates (UPDATE pushes into consumer RACs).
 */

#ifndef PCSIM_NET_MESSAGE_HH
#define PCSIM_NET_MESSAGE_HH

#include <cstdint>
#include <string>

#include "src/mem/sharer_set.hh"
#include "src/sim/types.hh"

namespace pcsim
{

/** All message types exchanged between node hubs. */
enum class MsgType : std::uint8_t
{
    // Requests (requester -> home or delegated home).
    ReqShared,       ///< read miss: request a read-only copy
    ReqExcl,         ///< write miss: request an exclusive copy
    ReqUpgrade,      ///< write hit on SHARED copy: request ownership
    WritebackM,      ///< eviction of a modified line (carries data)

    // Home -> requester replies.
    RespSharedData,  ///< read-only data reply
    RespExclData,    ///< exclusive data reply (+ count of invals to wait)
    RespUpgradeAck,  ///< ownership granted without data (+ inval count)
    WritebackAck,    ///< writeback accepted
    Nack,            ///< busy; retry the same target later
    NackNotHome,     ///< target no longer manages the line; retry at home
    HomeHint,        ///< "line is delegated to node X"; cache the hint

    // Home -> third party interventions.
    Inval,           ///< invalidate your copy; ack the requester
    IntervDowngrade, ///< downgrade M->S; data to requester, SHWB to home
    IntervTransfer,  ///< yield M to requester; data to req, ack to home

    // Third party responses.
    InvalAck,        ///< invalidation done (sent to requester)
    SharedResp,      ///< downgraded data to the reading requester
    SharedWriteback, ///< downgraded data back to the home (SHWB)
    ExclResp,        ///< transferred exclusive data to the requester
    TransferAck,     ///< ownership transfer complete (sent to home)
    IntervNack,      ///< intervention target no longer holds the line

    // Directory delegation (Section 2.3).
    Delegate,        ///< home -> producer: directory info + data
    Undele,          ///< producer -> home: directory info + data back

    // Speculative updates (Section 2.4).
    Update,          ///< producer -> consumer: pushed line contents

    // Write-update policies (src/protocol/policy.hh). Numbered after
    // the verify layer's synthetic local-event block (PEvent values
    // 23..30) so MsgType and PEvent stay value-aliased for every
    // message type without renumbering any existing event code --
    // committed conformance documents embed the numeric codes.
    UpdGrant = 31,   ///< home -> writer: write permission + data,
                     ///< home is BUSY_UPD until the UpdateWB returns
    UpdateWB,        ///< writer -> home: the new data, closes the
                     ///< write episode and fans out Updates
    UpdateDrop,      ///< consumer -> home: stop updating me
                     ///< (adaptive self-invalidation)

    NumMsgTypes
};

/** Human-readable message type name (for traces and stats). */
const char *msgTypeName(MsgType t);

/** True for message types that carry a full cache line of data. */
bool msgCarriesData(MsgType t);

/**
 * A network message. Field usage varies by type; unused fields keep
 * their defaults. Data payloads are abstracted to a line Version (see
 * DESIGN.md): the version is the write-epoch stamp the coherence
 * checker validates.
 */
struct Message
{
    MsgType type = MsgType::Nack;
    Addr addr = invalidAddr;    ///< line-aligned address
    NodeId src = invalidNode;   ///< sending hub
    NodeId dst = invalidNode;   ///< receiving hub
    NodeId requester = invalidNode; ///< original requester (3-hop flows)

    Version version = 0;        ///< line write-epoch (data abstraction)
    bool dirty = false;         ///< data differs from home memory
    SharerSet sharers;          ///< sharing vector (Delegate/Undele)
    std::uint16_t ackCount = 0; ///< invalidation acks to expect
    NodeId hintHome = invalidNode; ///< delegated home (HomeHint)
    NodeId owner = invalidNode; ///< owner field (Delegate/Undele)

    /** Undele: a pending exclusive request the home should service. */
    NodeId pendingReq = invalidNode;
    MsgType pendingType = MsgType::Nack;

    /** Monotone id for tracing. Assigned by the Network on send. */
    std::uint64_t msgId = 0;

    /**
     * Transaction id: stamped on requests by the requester's MSHR and
     * echoed on every reply (data, acks, NACKs) so responses that
     * outlive their transaction -- e.g. a home reply racing a
     * speculative update that already satisfied the read -- are
     * recognized as stale and dropped.
     */
    std::uint64_t txnId = 0;

    /**
     * Retry attempt count, stamped on requests from the requester's
     * MSHR on every (re)send: 0 on the first issue, incremented per
     * NACK retry. The aged-priority arbiter (src/protocol/arbiter.hh)
     * uses it to service the longest-suffering requester first when a
     * parked-request queue overflows back into NACK mode.
     */
    std::uint32_t retries = 0;

    /** Wire size in bytes: 32 B header; +128 B if data-carrying. */
    std::uint32_t sizeBytes() const;

    std::string toString() const;
};

/** Abstract sink for delivered messages (implemented by node hubs). */
class MessageHandler
{
  public:
    virtual ~MessageHandler() = default;
    virtual void handleMessage(const Message &msg) = 0;
};

} // namespace pcsim

#endif // PCSIM_NET_MESSAGE_HH
