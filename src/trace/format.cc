#include "src/trace/format.hh"

#include <cstdio>
#include <cstring>
#include <limits>

namespace pcsim
{
namespace trace
{

namespace
{

void
putU16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** Bounds-checked little-endian cursor over an input buffer. */
class Cursor
{
  public:
    Cursor(const std::string &bytes, const std::string &origin)
        : _bytes(bytes), _origin(origin)
    {
    }

    std::size_t pos() const { return _pos; }
    std::size_t remaining() const { return _bytes.size() - _pos; }

    void
    need(std::size_t n, const char *what)
    {
        if (remaining() < n)
            throw TraceError(_origin + ": truncated " + what +
                             " (need " + std::to_string(n) +
                             " bytes at offset " + std::to_string(_pos) +
                             ", have " + std::to_string(remaining()) +
                             ")");
    }

    std::uint8_t
    u8(const char *what)
    {
        need(1, what);
        return static_cast<std::uint8_t>(_bytes[_pos++]);
    }

    std::uint16_t
    u16(const char *what)
    {
        need(2, what);
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= std::uint16_t(std::uint8_t(_bytes[_pos++])) << (8 * i);
        return v;
    }

    std::uint32_t
    u32(const char *what)
    {
        need(4, what);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(std::uint8_t(_bytes[_pos++])) << (8 * i);
        return v;
    }

    std::uint64_t
    u64(const char *what)
    {
        need(8, what);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(std::uint8_t(_bytes[_pos++])) << (8 * i);
        return v;
    }

    std::string
    str(std::size_t n, const char *what)
    {
        need(n, what);
        std::string s = _bytes.substr(_pos, n);
        _pos += n;
        return s;
    }

  private:
    const std::string &_bytes;
    std::string _origin;
    std::size_t _pos = 0;
};

std::uint8_t
encodeKind(MemOp::Kind k, const std::string &origin)
{
    switch (k) {
      case MemOp::Kind::Read:
        return 0;
      case MemOp::Kind::Write:
        return 1;
      case MemOp::Kind::Think:
        return 2;
      case MemOp::Kind::Barrier:
        return 3;
    }
    throw TraceError(origin + ": unencodable op kind " +
                     std::to_string(static_cast<unsigned>(k)));
}

} // namespace

std::string
encodeTrace(const TraceMeta &meta,
            const std::vector<std::vector<MemOp>> &per_node)
{
    const std::string origin = "<encode>";
    if (per_node.size() != meta.nodeCount)
        throw TraceError(origin + ": " +
                         std::to_string(per_node.size()) +
                         " node streams but header says " +
                         std::to_string(meta.nodeCount));
    const auto max_name = std::numeric_limits<std::uint16_t>::max();
    if (meta.workload.size() > max_name ||
        meta.config.size() > max_name)
        throw TraceError(origin + ": name longer than 65535 bytes");

    std::uint64_t ops = 0;
    for (const auto &t : per_node)
        ops += t.size();

    std::string out;
    out.reserve(64 + meta.workload.size() + meta.config.size() +
                ops * traceRecordBytes);
    out.append(traceMagic, sizeof(traceMagic));
    putU32(out, traceVersion);
    putU32(out, meta.nodeCount);
    putU32(out, meta.lineBytes);
    putU32(out, meta.coarse);
    putU64(out, meta.seed);
    std::uint64_t scale_bits;
    static_assert(sizeof(scale_bits) == sizeof(meta.scale));
    std::memcpy(&scale_bits, &meta.scale, sizeof(scale_bits));
    putU64(out, scale_bits);
    putU64(out, ops);
    putU16(out, static_cast<std::uint16_t>(meta.workload.size()));
    out += meta.workload;
    putU16(out, static_cast<std::uint16_t>(meta.config.size()));
    out += meta.config;

    for (std::uint32_t node = 0; node < meta.nodeCount; ++node) {
        std::uint32_t seq = 0;
        for (const MemOp &op : per_node[node]) {
            putU16(out, static_cast<std::uint16_t>(node));
            out.push_back(
                static_cast<char>(encodeKind(op.kind, origin)));
            out.push_back(0); // reserved
            putU32(out, seq++);
            std::uint64_t payload = 0;
            if (op.kind == MemOp::Kind::Read ||
                op.kind == MemOp::Kind::Write)
                payload = op.addr;
            else if (op.kind == MemOp::Kind::Think)
                payload = op.cycles;
            putU64(out, payload);
        }
    }
    return out;
}

TraceData
decodeTrace(const std::string &bytes, const std::string &origin)
{
    Cursor c(bytes, origin);

    const std::string magic = c.str(sizeof(traceMagic), "header magic");
    if (std::memcmp(magic.data(), traceMagic, sizeof(traceMagic)) != 0)
        throw TraceError(origin +
                         ": bad magic (not a pcsim \"PCTR\" trace)");
    const std::uint32_t version = c.u32("header version");
    if (version != traceVersion)
        throw TraceError(origin + ": unsupported trace version " +
                         std::to_string(version) + " (this build reads "
                         "version " + std::to_string(traceVersion) +
                         ")");

    TraceData data;
    TraceMeta &m = data.meta;
    m.nodeCount = c.u32("header nodeCount");
    if (m.nodeCount == 0)
        throw TraceError(origin + ": header nodeCount is zero");
    m.lineBytes = c.u32("header lineBytes");
    m.coarse = c.u32("header coarse");
    if (m.coarse == 0)
        throw TraceError(origin + ": header coarse is zero");
    m.seed = c.u64("header seed");
    const std::uint64_t scale_bits = c.u64("header scale");
    std::memcpy(&m.scale, &scale_bits, sizeof(m.scale));
    m.opCount = c.u64("header opCount");
    m.workload = c.str(c.u16("workload name length"), "workload name");
    m.config = c.str(c.u16("config name length"), "config name");

    if (c.remaining() != m.opCount * traceRecordBytes)
        throw TraceError(
            origin + ": record section is " +
            std::to_string(c.remaining()) + " bytes but the header "
            "promises " + std::to_string(m.opCount) + " records (" +
            std::to_string(m.opCount * traceRecordBytes) + " bytes)");

    data.perNode.resize(m.nodeCount);
    for (std::uint64_t i = 0; i < m.opCount; ++i) {
        const std::uint16_t node = c.u16("record node");
        const std::uint8_t kind = c.u8("record op");
        const std::uint8_t reserved = c.u8("record reserved byte");
        const std::uint32_t seq = c.u32("record seq");
        const std::uint64_t payload = c.u64("record payload");
        const std::string where =
            origin + ": record " + std::to_string(i);
        if (node >= m.nodeCount)
            throw TraceError(where + ": node " + std::to_string(node) +
                             " out of range (nodeCount " +
                             std::to_string(m.nodeCount) + ")");
        if (reserved != 0)
            throw TraceError(where + ": nonzero reserved byte");
        auto &stream = data.perNode[node];
        if (seq != stream.size())
            throw TraceError(where + ": node " + std::to_string(node) +
                             " seq " + std::to_string(seq) +
                             " out of order (expected " +
                             std::to_string(stream.size()) + ")");
        switch (kind) {
          case 0:
            stream.push_back(MemOp::read(payload));
            break;
          case 1:
            stream.push_back(MemOp::write(payload));
            break;
          case 2:
            if (payload >
                std::numeric_limits<std::uint32_t>::max())
                throw TraceError(where + ": think cycles " +
                                 std::to_string(payload) +
                                 " exceed 32 bits");
            stream.push_back(
                MemOp::think(static_cast<std::uint32_t>(payload)));
            break;
          case 3:
            if (payload != 0)
                throw TraceError(where +
                                 ": barrier with nonzero payload");
            stream.push_back(MemOp::barrier());
            break;
          default:
            throw TraceError(where + ": unknown op " +
                             std::to_string(kind));
        }
    }
    return data;
}

namespace
{

std::string
readBinaryFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw TraceError(path + ": cannot open for reading");
    std::string out;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed)
        throw TraceError(path + ": read error");
    return out;
}

} // namespace

void
writeTraceFile(const std::string &path, const TraceMeta &meta,
               const std::vector<std::vector<MemOp>> &per_node)
{
    const std::string bytes = encodeTrace(meta, per_node);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw TraceError(path + ": cannot open for writing");
    const std::size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool failed = std::fclose(f) != 0 || written != bytes.size();
    if (failed)
        throw TraceError(path + ": write error");
}

TraceData
readTraceFile(const std::string &path)
{
    return decodeTrace(readBinaryFile(path), path);
}

TraceMeta
readTraceMeta(const std::string &path)
{
    // Decoding validates the whole record section too, which is what
    // `trace info` wants anyway: report on a trace iff it replays.
    return readTraceFile(path).meta;
}

} // namespace trace
} // namespace pcsim
