/**
 * @file
 * Trace recording: capture the memory-op stream of any Workload.
 *
 * TraceRecorder accumulates per-node op vectors; RecordingWorkload is
 * a transparent wrapper that tees every op a Workload hands to the
 * simulator into a recorder. The wrapper is pure pass-through -- it
 * never reorders, delays or drops ops -- so a recorded run's
 * statistics are byte-identical to an unrecorded one, and replaying
 * the captured trace reproduces them exactly.
 */

#ifndef PCSIM_TRACE_RECORDER_HH
#define PCSIM_TRACE_RECORDER_HH

#include "src/trace/format.hh"
#include "src/workload/workload.hh"

namespace pcsim
{
namespace trace
{

/** Per-node op accumulator fed by RecordingWorkload. */
class TraceRecorder
{
  public:
    explicit TraceRecorder(unsigned num_nodes) : _perNode(num_nodes) {}

    void
    record(unsigned node, const MemOp &op)
    {
        _perNode.at(node).push_back(op);
    }

    /** Drop everything captured so far (a Workload::reset rewinds the
     *  source streams, so the recording must restart too). */
    void
    clear()
    {
        for (auto &t : _perNode)
            t.clear();
    }

    const std::vector<std::vector<MemOp>> &
    perNode() const
    {
        return _perNode;
    }

    std::uint64_t
    opCount() const
    {
        std::uint64_t n = 0;
        for (const auto &t : _perNode)
            n += t.size();
        return n;
    }

    /** Serialize the capture under @p meta (opCount is recomputed). */
    void
    writeFile(const std::string &path, const TraceMeta &meta) const
    {
        writeTraceFile(path, meta, _perNode);
    }

  private:
    std::vector<std::vector<MemOp>> _perNode;
};

/** Wraps any Workload and tees its op stream into a TraceRecorder. */
class RecordingWorkload : public Workload
{
  public:
    /** Both references must outlive the wrapper. */
    RecordingWorkload(Workload &inner, TraceRecorder &recorder)
        : _inner(inner), _recorder(recorder)
    {
    }

    const std::string &name() const override { return _inner.name(); }
    unsigned numCpus() const override { return _inner.numCpus(); }

    bool
    next(unsigned cpu, MemOp &op) override
    {
        if (!_inner.next(cpu, op))
            return false;
        _recorder.record(cpu, op);
        return true;
    }

    void
    reset() override
    {
        _inner.reset();
        _recorder.clear();
    }

    std::string
    paperProblemSize() const override
    {
        return _inner.paperProblemSize();
    }

    std::string
    scaledProblemSize() const override
    {
        return _inner.scaledProblemSize();
    }

    const std::vector<MemOp> *
    cpuOps(unsigned cpu) const override
    {
        return _inner.cpuOps(cpu);
    }

  private:
    Workload &_inner;
    TraceRecorder &_recorder;
};

} // namespace trace
} // namespace pcsim

#endif // PCSIM_TRACE_RECORDER_HH
