#include "src/trace/text_ingest.hh"

#include <cctype>
#include <cstdio>
#include <limits>

namespace pcsim
{
namespace trace
{

namespace
{

std::string
readWholeFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw TraceError(path + ": cannot open for reading");
    std::string out;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed)
        throw TraceError(path + ": read error");
    return out;
}

/** Parse a hexadecimal value (optional 0x/0X prefix). */
std::uint64_t
parseHex(const std::string &tok, const std::string &where)
{
    std::size_t i = 0;
    if (tok.size() >= 2 && tok[0] == '0' &&
        (tok[1] == 'x' || tok[1] == 'X'))
        i = 2;
    if (i >= tok.size())
        throw TraceError(where + ": empty value '" + tok + "'");
    std::uint64_t v = 0;
    for (; i < tok.size(); ++i) {
        const char c = tok[i];
        unsigned digit;
        if (c >= '0' && c <= '9')
            digit = unsigned(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = unsigned(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F')
            digit = unsigned(c - 'A') + 10;
        else
            throw TraceError(where + ": bad hex value '" + tok + "'");
        if (v >> 60)
            throw TraceError(where + ": value '" + tok +
                             "' overflows 64 bits");
        v = (v << 4) | digit;
    }
    return v;
}

} // namespace

std::vector<MemOp>
parseTextTrace(const std::string &text, const std::string &origin)
{
    std::vector<MemOp> ops;
    std::size_t pos = 0;
    unsigned lineno = 0;
    while (pos <= text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();

        // Tokenize on whitespace.
        std::vector<std::string> toks;
        std::size_t i = 0;
        while (i < line.size()) {
            while (i < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[i])))
                ++i;
            std::size_t start = i;
            while (i < line.size() &&
                   !std::isspace(static_cast<unsigned char>(line[i])))
                ++i;
            if (i > start)
                toks.push_back(line.substr(start, i - start));
        }
        if (toks.empty() || toks[0][0] == '#')
            continue;

        const std::string where =
            origin + ":" + std::to_string(lineno);
        if (toks.size() != 2)
            throw TraceError(where + ": expected '<label> <value>', "
                             "got " + std::to_string(toks.size()) +
                             " token(s)");
        const std::string &label = toks[0];
        const std::uint64_t value = parseHex(toks[1], where);
        if (label == "0") {
            ops.push_back(MemOp::read(value));
        } else if (label == "1") {
            ops.push_back(MemOp::write(value));
        } else if (label == "2") {
            if (value > std::numeric_limits<std::uint32_t>::max())
                throw TraceError(where + ": compute cycles '" +
                                 toks[1] + "' exceed 32 bits");
            ops.push_back(
                MemOp::think(static_cast<std::uint32_t>(value)));
        } else {
            throw TraceError(where + ": unknown label '" + label +
                             "' (expected 0 = load, 1 = store, "
                             "2 = compute)");
        }

        if (eol == text.size())
            break;
    }
    return ops;
}

TraceData
ingestTextTraces(const std::vector<std::string> &paths,
                 const std::string &workload_name,
                 std::uint32_t line_bytes)
{
    if (paths.empty())
        throw TraceError("ingest: no trace files given");
    TraceData data;
    data.meta.nodeCount = static_cast<std::uint32_t>(paths.size());
    data.meta.lineBytes = line_bytes;
    data.meta.workload = workload_name;
    data.perNode.resize(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
        std::vector<MemOp> ops =
            parseTextTrace(readWholeFile(paths[i]), paths[i]);
        // One barrier per node ends the (empty) init phase, so stats
        // cover the whole external trace. Every node gets exactly one,
        // keeping barrier arrivals balanced even for empty files.
        auto &stream = data.perNode[i];
        stream.reserve(ops.size() + 1);
        stream.push_back(MemOp::barrier());
        stream.insert(stream.end(), ops.begin(), ops.end());
    }
    data.meta.opCount = data.totalOps();
    return data;
}

} // namespace trace
} // namespace pcsim
