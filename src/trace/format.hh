/**
 * @file
 * The pcsim binary trace format ("PCTR"): a compact, deterministic,
 * dependency-free serialization of the per-node memory-op streams a
 * workload generator produces.
 *
 * A trace file is a versioned header followed by fixed-width records.
 * All multi-byte fields are little-endian regardless of host, so a
 * trace written on one machine replays byte-identically on another.
 *
 * Layout (version 1):
 *
 *   offset  size  field
 *        0     4  magic "PCTR"
 *        4     4  u32 version (= 1)
 *        8     4  u32 nodeCount
 *       12     4  u32 lineBytes        (coherence granularity)
 *       16     4  u32 coarse           (nodes per sharer bit, >= 1)
 *       20     8  u64 seed             (machine seed of the source run)
 *       28     8  f64 scale            (workload scale, IEEE-754 bits)
 *       36     8  u64 opCount          (total records that follow)
 *       44     2  u16 workload name length, then that many bytes
 *        .     2  u16 config name length, then that many bytes
 *        .  16*N  records
 *
 * Record (16 bytes):
 *
 *   u16 node       owning node id, < nodeCount
 *   u8  op         0 = LOAD, 1 = STORE, 2 = THINK, 3 = BARRIER
 *   u8  reserved   must be 0
 *   u32 seq        per-node ordering hint: the op's index within its
 *                  node's stream; the reader rejects gaps/reordering
 *   u64 payload    address (LOAD/STORE), think cycles (THINK), 0
 *
 * Records are written node-major (all of node 0, then node 1, ...)
 * but the reader accepts any interleaving whose per-node seq numbers
 * are dense and ascending -- the replay contract only constrains the
 * order *within* a node; the cross-node interleaving is decided by
 * the simulator, which is what makes replayed stats byte-identical
 * at any `-j`.
 */

#ifndef PCSIM_TRACE_FORMAT_HH
#define PCSIM_TRACE_FORMAT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/workload/workload.hh"

namespace pcsim
{
namespace trace
{

/** Error thrown on malformed trace input or failed trace I/O. The
 *  message always names the offending file (or buffer origin) and,
 *  for text ingest, the 1-based line number. */
class TraceError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

constexpr char traceMagic[4] = {'P', 'C', 'T', 'R'};
constexpr std::uint32_t traceVersion = 1;
constexpr std::size_t traceRecordBytes = 16;

/** Header metadata: everything needed to rebuild the source run's
 *  machine configuration and job identity for byte-identical replay. */
struct TraceMeta
{
    std::uint32_t nodeCount = 0;
    std::uint32_t lineBytes = 128;
    /** Nodes per directory sharer bit of the source machine (>= 1;
     *  1 = exact vector). */
    std::uint32_t coarse = 1;
    std::uint64_t seed = 1;
    double scale = 1.0;
    /** Total records in the file (filled by the writer). */
    std::uint64_t opCount = 0;
    /** Generator name ("PCmicro", "Em3D", ...; "ingest" for external
     *  text traces). Replay reports this as the workload name so the
     *  serialized stats match the source run's. */
    std::string workload;
    /** Machine preset name of the source run ("base", "small", ...). */
    std::string config;
};

/** A fully-decoded trace: header plus one op stream per node. */
struct TraceData
{
    TraceMeta meta;
    std::vector<std::vector<MemOp>> perNode;

    std::uint64_t
    totalOps() const
    {
        std::uint64_t n = 0;
        for (const auto &t : perNode)
            n += t.size();
        return n;
    }
};

/** Serialize to the binary format. @p per_node size must equal
 *  meta.nodeCount; meta.opCount is recomputed. @throws TraceError on
 *  unencodable input (op kind out of range, name too long). */
std::string encodeTrace(const TraceMeta &meta,
                        const std::vector<std::vector<MemOp>> &per_node);

/** Parse a binary trace buffer. @p origin names the source in error
 *  messages (a file path, or "<memory>" in tests).
 *  @throws TraceError with a precise message on bad magic, unsupported
 *  version, truncation, out-of-range node ids or broken seq order. */
TraceData decodeTrace(const std::string &bytes,
                      const std::string &origin);

/** encodeTrace + write to @p path. @throws TraceError on I/O failure. */
void writeTraceFile(const std::string &path, const TraceMeta &meta,
                    const std::vector<std::vector<MemOp>> &per_node);

/** Read + decodeTrace. @throws TraceError when unreadable/malformed. */
TraceData readTraceFile(const std::string &path);

/** Read only the header of @p path (cheap `pcsim trace info`). */
TraceMeta readTraceMeta(const std::string &path);

} // namespace trace
} // namespace pcsim

#endif // PCSIM_TRACE_FORMAT_HH
