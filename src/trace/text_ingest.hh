/**
 * @file
 * External trace ingestion: per-core text address traces in the style
 * of the saiutkarsh33 cache-coherence simulator (`./coherence MESI
 * traces/bodytrack_0.data ...`): one file per core, one op per line,
 *
 *   <label> <value>
 *
 * where label 0 = load from address, 1 = store to address, 2 = compute
 * for that many cycles; values are hexadecimal (with or without "0x").
 * Blank lines and lines starting with '#' are ignored.
 *
 * File i becomes NodeId i's op stream. Addresses are used verbatim:
 * the existing memory map assigns each page a home node on first
 * touch, so an external trace exercises the directory protocol with
 * no address rewriting. Each stream is prefixed with one barrier so
 * the repo-wide convention holds (the first barrier ends the
 * initialization phase and resets statistics); the whole external
 * trace is measured as the parallel phase.
 */

#ifndef PCSIM_TRACE_TEXT_INGEST_HH
#define PCSIM_TRACE_TEXT_INGEST_HH

#include <string>
#include <vector>

#include "src/trace/format.hh"

namespace pcsim
{
namespace trace
{

/**
 * Parse one per-core text trace file per entry of @p paths into a
 * TraceData with nodeCount = paths.size().
 *
 * @param workload_name reported workload name (default "ingest").
 * @param line_bytes coherence granularity recorded in the meta.
 * @throws TraceError naming file and 1-based line on malformed input
 *         (unknown label, bad hex value, trailing garbage), or on an
 *         unreadable file.
 */
TraceData ingestTextTraces(const std::vector<std::string> &paths,
                           const std::string &workload_name = "ingest",
                           std::uint32_t line_bytes = 128);

/** Parse a single in-memory text trace (exposed for tests); @p origin
 *  names the buffer in errors. Returns the op stream WITHOUT the
 *  leading barrier that ingestTextTraces prepends. */
std::vector<MemOp> parseTextTrace(const std::string &text,
                                  const std::string &origin);

} // namespace trace
} // namespace pcsim

#endif // PCSIM_TRACE_TEXT_INGEST_HH
