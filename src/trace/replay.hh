/**
 * @file
 * Trace replay: drive a simulation from a decoded trace instead of a
 * synthetic generator.
 *
 * TraceReplayWorkload is a first-class Workload over per-node cursors
 * (the TraceWorkload base): the simulator pulls each node's ops in
 * recorded order, while the cross-node interleaving is decided by the
 * event queue exactly as it is for generated workloads. Replaying a
 * trace on the machine configuration it was recorded from therefore
 * reproduces the source run's statistics byte for byte, at any
 * runner thread count.
 */

#ifndef PCSIM_TRACE_REPLAY_HH
#define PCSIM_TRACE_REPLAY_HH

#include <memory>

#include "src/trace/format.hh"
#include "src/workload/workload.hh"

namespace pcsim
{
namespace trace
{

/** A workload that replays a decoded trace. */
class TraceReplayWorkload : public TraceWorkload
{
  public:
    /** Takes ownership of @p data's op streams. The workload reports
     *  the recorded generator's name so serialized results match the
     *  source run. */
    explicit TraceReplayWorkload(TraceData data)
        : TraceWorkload(data.meta.workload.empty() ? "trace"
                                                   : data.meta.workload,
                        data.meta.nodeCount),
          _meta(std::move(data.meta))
    {
        for (unsigned n = 0; n < numCpus(); ++n)
            cpuTrace(n) = std::move(data.perNode[n]);
    }

    const TraceMeta &meta() const { return _meta; }

  private:
    TraceMeta _meta;
};

/** readTraceFile + wrap. @throws TraceError on unreadable/malformed
 *  input. */
inline std::unique_ptr<TraceReplayWorkload>
loadReplayWorkload(const std::string &path)
{
    return std::make_unique<TraceReplayWorkload>(readTraceFile(path));
}

} // namespace trace
} // namespace pcsim

#endif // PCSIM_TRACE_REPLAY_HH
