/**
 * @file
 * `pcsim` -- unified experiment-runner CLI.
 *
 *   pcsim run   --workload em3d --config pcopt --json out.json
 *   pcsim sweep --figure 7 -j8
 *   pcsim list
 *
 * `run` executes a (workload x config x seed) cartesian product built
 * from comma-separated lists; `sweep` reproduces a paper figure/table
 * through the same runner and prints the paper-comparison table as a
 * formatting layer over the JSON results document. Simulations are
 * deterministic, so `--deterministic-check` (run everything twice and
 * byte-compare the serialized results) should never fail; CI wires it
 * in as a regression tripwire.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/protocol/policy.hh"
#include "src/runner/bench.hh"
#include "src/runner/compare.hh"
#include "src/runner/faults.hh"
#include "src/runner/figures.hh"
#include "src/runner/job.hh"
#include "src/runner/results.hh"
#include "src/runner/runner.hh"
#include "src/runner/serve.hh"
#include "src/runner/trace_cmd.hh"
#include "src/trace/format.hh"
#include "src/verify/lint.hh"
#include "src/verify/liveness.hh"
#include "src/verify/mdg.hh"
#include "src/verify/spec.hh"

using namespace pcsim;

namespace
{

/** One row of the generated usage table: every subcommand registers
 *  here, so `pcsim help` can never drift out of sync with dispatch. */
struct CommandInfo
{
    const char *name;
    const char *synopsis;
    const char *oneline;
};

const CommandInfo commandTable[] = {
    {"run", "--workload <names> [--config <names>] [options]",
     "cartesian (workload x config x seed) simulation runs"},
    {"sweep", "(--figure 7|9|10 | --table 2) [options]",
     "reproduce a paper figure or table"},
    {"scale", "[--nodes n,m,...] [--workload W] [options]",
     "node-count scaling sweep (base/delegation/delegate-update)"},
    {"serve", "[--scenario a,b] [--nodes n,m] [options]",
     "datacenter serving-workload sweep (KVServe/WorkQueue/RCU/PubSub)"},
    {"compare", "[--scenario a,b] [--nodes n,m] [options]",
     "coherence-policy bake-off across every registered policy"},
    {"trace record", "[--workload W] [--config C] -o FILE [options]",
     "capture a run's memory-op stream as a binary PCTR trace"},
    {"trace replay", "FILE [options]",
     "re-drive the simulator from a trace; stats match the source run"},
    {"trace info", "FILE", "print a trace file's header"},
    {"bench", "[--json PATH] [--baseline PATH] [options]",
     "simulation-kernel microbenchmarks"},
    {"faults", "[--scenario a,b] [--arbitration a,b] [options]",
     "fault-injection robustness sweep"},
    {"qos", "[--scenario a,b] [--arbitration a,b] [options]",
     "fairness bake-off of the directory arbitration modes"},
    {"lint",
     "[--liveness|--mdg] [--no-mc] [--policy P] "
     "[--coverage results.json] [options]",
     "static checks of the protocol transition specs"},
    {"list", "", "list workloads and configuration presets"},
    {"help", "", "show this text"},
};

int
usage(std::FILE *out)
{
    std::fprintf(out,
"pcsim - producer-consumer coherence protocol experiment runner\n"
"\n"
"usage: pcsim <command> [options]\n"
"\n"
"commands:\n");
    for (const auto &c : commandTable) {
        std::fprintf(out, "  %-13s %s\n", c.name, c.oneline);
        if (c.synopsis[0])
            std::fprintf(out, "  %-13s   pcsim %s %s\n", "", c.name,
                         c.synopsis);
    }
    std::fprintf(out,
"\n"
"run selection:\n"
"  --workload a,b         workload names, case-insensitive\n"
"                         (micro is an alias for PCmicro)\n"
"  --config a,b           machine presets (default: base)\n"
"  --seeds n,m            seeds, one job per seed (default: 1)\n"
"  --nodes N              machine size (default: 16); scale takes a\n"
"                         comma-separated list (default: 16..1024)\n"
"  --coarse K             nodes per directory sharer bit (power of\n"
"                         two; default 1 = exact vector)\n"
"  --scale F              workload scale factor (default: 1)\n"
"  --checker              enable the coherence invariant checker\n"
"  --conformance          enable the protocol-spec conformance hook\n"
"                         (fails the run on out-of-spec transitions\n"
"                         and records transition coverage)\n"
"\n"
"lint (static checks of the declarative protocol transition specs):\n"
"  --no-mc                skip the model-checker cross-check\n"
"  --policy P             spec to lint: one registered policy name\n"
"                         (mesi-dir, delegation, delegation-updates,\n"
"                         write-update, adaptive-hybrid) or 'all'\n"
"                         (default: delegation-updates, the shipped\n"
"                         full-protocol spec)\n"
"  --coverage PATH        report never-exercised legal transitions\n"
"                         from a results JSON written by runs with\n"
"                         --conformance\n"
"  --mdg                  message-dependency-graph pass: derive the\n"
"                         type-level dependence graph from the spec's\n"
"                         allowed-sends sets and flag channel-class\n"
"                         cycles, unprotected request forwards,\n"
"                         undeliverable sends and per-rule channel-\n"
"                         capacity violations (default policy: all)\n"
"  --liveness             liveness pass: explore the src/mc model's\n"
"                         state graph and flag livelock lassos (non-\n"
"                         progress cycles under fairness) and hard\n"
"                         deadlocks, with step-by-step witnesses\n"
"                         (default policy: all)\n"
"  --repro PATH           with --liveness: write the first witness's\n"
"                         CPU-op schedule as a replayable PCTR trace\n"
"  exit status: 0 clean, 1 usage/io error, 2 findings\n"
"\n"
"scale (node-count scaling sweep of base/delegation/delegate-update):\n"
"  --nodes n,m            machine sizes (default: 16,32,64,128,256,\n"
"                         512,1024; exact sharer vectors throughout,\n"
"                         use --coarse with 'run' to study coarse\n"
"                         directories at the top sizes)\n"
"  --workload W           workload per point (default: Em3D)\n"
"  --scale F              workload scale per point (default: 0.25)\n"
"  --repeats N            repeats per point, best wall time\n"
"                         (default: 1)\n"
"\n"
"faults (fault-injection robustness sweep; checker + conformance are\n"
"always on, and exponential retry backoff is enabled):\n"
"  --scenario a,b         fault scenarios (default: all): gray-links,\n"
"                         ni-stalls, hotspot, dir-pressure, storm\n"
"  --workload W           workload per point (default: PCmicro)\n"
"  --arbitration a,b      directory arbitration modes to cross with\n"
"                         the scenarios (default: nack-retry):\n"
"                         nack-retry, queue, aged-priority\n"
"  default --json is BENCH_faults.json\n"
"\n"
"qos (fairness bake-off; the faults sweep restricted to the\n"
"contention scenarios and crossed with every arbitration mode):\n"
"  --scenario a,b         scenarios (default: storm,hotspot)\n"
"  --arbitration a,b      modes (default: all three)\n"
"  default --json is BENCH_qos.json\n"
"\n"
"serve (serving sweep of base/delegation/delegate-update):\n"
"  --scenario a,b         scenarios (default: all): KVServe,\n"
"                         WorkQueue, RCU, PubSub\n"
"  --nodes n,m            machine sizes (default: 16,64; any value\n"
"                         up to 4096 validates)\n"
"  default --json is BENCH_serve.json\n"
"\n"
"compare (bake-off of every registered coherence policy: mesi-dir,\n"
"delegation, delegation-updates, write-update, adaptive-hybrid):\n"
"  --scenario a,b         scenarios (default: PCmicro,PubSub); any\n"
"                         registry workload is accepted\n"
"  --nodes n,m            machine sizes (default: 16,64)\n"
"  default --json is BENCH_compare.json\n"
"\n"
"trace (binary PCTR op traces; see src/trace/format.hh):\n"
"  -o, --output FILE      (record) trace file to write (required)\n"
"  --text                 (record) ingest per-core text trace files\n"
"                         given as positional args ('<label> <hex>'\n"
"                         lines; 0 = load, 1 = store, 2 = compute\n"
"                         cycles) instead of simulating\n"
"  --config C             (replay) override the header's machine\n"
"                         preset (ingested traces default to base)\n"
"\n"
"bench options:\n"
"  --events N             events per kernel microbenchmark\n"
"                         (default: 2000000)\n"
"  --repeats N            repeats per benchmark, best wall time\n"
"                         reported (default: 3)\n"
"  --baseline PATH        prior bench JSON; adds per-benchmark\n"
"                         speedup columns\n"
"  --parallel             shard-scaling suite: PCmicro and a 256-node\n"
"                         serving run at 1/2/4/8 kernel shards\n"
"                         (default --json: BENCH_parallel.json)\n"
"\n"
"common options:\n"
"  -j N, --jobs N         worker threads; 0 = all cores\n"
"                         (default: 1 for run, all cores for sweep)\n"
"  --parallel-run[=S]     run each simulation on the parallel event\n"
"                         kernel with S shards (default 4; clamped to\n"
"                         the topology's leaf count). Results are\n"
"                         byte-identical to the sequential kernel\n"
"  --json PATH            write JSON results; '-' = stdout\n"
"  --csv PATH             write CSV results; '-' = stdout\n"
"  --timing               include host wall-clock perf rates in the\n"
"                         outputs (breaks cross-host byte identity)\n"
"  --deterministic-check  run every job twice, byte-compare the\n"
"                         serialized results; exit 3 on mismatch\n"
"  --no-table             (sweep) skip the printed comparison table\n"
"  --quiet                suppress per-job progress on stderr\n"
"\n"
"exit status: 0 ok, 1 usage error, 2 job failed, 3 non-deterministic\n");
    return out == stderr ? 1 : 0;
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

struct Options
{
    std::string command;
    std::vector<std::string> workloads;
    std::vector<std::string> configs{"base"};
    bool configsSet = false;
    std::vector<std::uint64_t> seeds{1};
    unsigned nodes = 16;
    std::vector<unsigned> nodeList; ///< scale: machine sizes
    unsigned coarse = 1; ///< nodes per sharer bit (power of two)
    double scale = 1.0;
    bool scaleSet = false;
    bool checker = false;
    bool conformance = false;
    bool lintMc = true;           ///< lint: run the model cross-check
    std::string lintPolicy;       ///< lint: policy spec name or "all"
    std::string coveragePath;     ///< lint: results doc for coverage
    std::string lintMode;         ///< lint: "", "mdg" or "liveness"
    std::string reproPath;        ///< lint --liveness: PCTR repro out
    unsigned threads = 0;
    bool threadsSet = false;
    /** --parallel-run shard count (1 = sequential oracle kernel). */
    unsigned parallelShards = 1;
    bool parallelBench = false; ///< bench: shard-scaling suite
    std::string jsonPath;
    std::string csvPath;
    bool timing = false;
    bool deterministicCheck = false;
    bool table = true;
    bool quiet = false;
    int figure = 0;   ///< 7, 9 or 10
    int tableNum = 0; ///< 2
    std::vector<std::string> scenarioList; ///< faults: scenario names
    /** faults/qos: arbitration mode names to cross in. */
    std::vector<std::string> arbitrationList;

    // bench / scale
    std::uint64_t benchEvents = 2000000;
    unsigned benchRepeats = 3;
    bool repeatsSet = false;
    std::string baselinePath;

    // trace
    std::string outputPath;                ///< -o / --output
    bool textMode = false;                 ///< record: --text ingest
    std::vector<std::string> positional;   ///< trace file operands
};

/** Fetch the value of --opt VALUE / --opt=VALUE; nullptr on error. */
const char *
argValue(int argc, char **argv, int &i, const char *inline_value)
{
    if (inline_value)
        return inline_value;
    if (i + 1 >= argc) {
        std::fprintf(stderr, "pcsim: %s needs a value\n", argv[i]);
        return nullptr;
    }
    return argv[++i];
}

bool
parseArgs(int argc, char **argv, Options &opt, int first = 2)
{
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        const char *inline_value = nullptr;
        const std::size_t eq = arg.find('=');
        if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-' &&
            eq != std::string::npos) {
            inline_value = argv[i] + eq + 1;
            arg = arg.substr(0, eq);
        }
        // -jN shorthand.
        if (arg.size() > 2 && arg.compare(0, 2, "-j") == 0 &&
            arg[2] >= '0' && arg[2] <= '9') {
            inline_value = argv[i] + 2;
            arg = "-j";
        }

        const auto value = [&]() {
            return argValue(argc, argv, i, inline_value);
        };

        if (arg == "--workload" || arg == "--workloads") {
            const char *v = value();
            if (!v)
                return false;
            opt.workloads = splitList(v);
        } else if (arg == "--config" || arg == "--configs") {
            const char *v = value();
            if (!v)
                return false;
            opt.configs = splitList(v);
            opt.configsSet = true;
        } else if (arg == "--seed" || arg == "--seeds") {
            const char *v = value();
            if (!v)
                return false;
            opt.seeds.clear();
            for (const auto &s : splitList(v))
                opt.seeds.push_back(std::strtoull(s.c_str(), nullptr,
                                                  10));
            if (opt.seeds.empty())
                opt.seeds.push_back(1);
        } else if (arg == "--nodes") {
            const char *v = value();
            if (!v)
                return false;
            opt.nodeList.clear();
            for (const auto &s : splitList(v))
                opt.nodeList.push_back(
                    unsigned(std::strtoul(s.c_str(), nullptr, 10)));
            if (opt.nodeList.empty()) {
                std::fprintf(stderr, "pcsim: bad --nodes '%s'\n", v);
                return false;
            }
            opt.nodes = opt.nodeList.front();
            if (opt.nodeList.size() > 1 && opt.command != "scale" &&
                opt.command != "serve" && opt.command != "compare") {
                std::fprintf(stderr,
                             "pcsim: --nodes takes one value outside "
                             "'pcsim scale', 'pcsim serve' and 'pcsim "
                             "compare'\n");
                return false;
            }
        } else if (arg == "--coarse") {
            const char *v = value();
            if (!v)
                return false;
            opt.coarse = unsigned(std::strtoul(v, nullptr, 10));
            if (!isPowerOfTwo(opt.coarse)) {
                std::fprintf(stderr, "pcsim: --coarse '%s' must be a "
                                     "power of two >= 1\n",
                             v);
                return false;
            }
        } else if (arg == "--scale") {
            const char *v = value();
            if (!v)
                return false;
            char *end = nullptr;
            opt.scale = std::strtod(v, &end);
            opt.scaleSet = true;
            if (end == v || *end != '\0' || opt.scale <= 0) {
                std::fprintf(stderr, "pcsim: bad --scale '%s'\n", v);
                return false;
            }
        } else if (arg == "--parallel-run") {
            // Bare flag defaults to 4 shards; never consumes the next
            // argument (the count rides inline as --parallel-run=S).
            if (inline_value) {
                char *end = nullptr;
                opt.parallelShards =
                    unsigned(std::strtoul(inline_value, &end, 10));
                if (end == inline_value || *end != '\0' ||
                    opt.parallelShards == 0) {
                    std::fprintf(stderr,
                                 "pcsim: bad --parallel-run '%s'\n",
                                 inline_value);
                    return false;
                }
            } else {
                opt.parallelShards = 4;
            }
        } else if (arg == "--parallel") {
            opt.parallelBench = true;
        } else if (arg == "-j" || arg == "--jobs") {
            const char *v = value();
            if (!v)
                return false;
            opt.threads = unsigned(std::strtoul(v, nullptr, 10));
            opt.threadsSet = true;
        } else if (arg == "--json") {
            const char *v = value();
            if (!v)
                return false;
            opt.jsonPath = v;
        } else if (arg == "--csv") {
            const char *v = value();
            if (!v)
                return false;
            opt.csvPath = v;
        } else if (arg == "--figure") {
            const char *v = value();
            if (!v)
                return false;
            opt.figure = int(std::strtol(v, nullptr, 10));
        } else if (arg == "--table" && opt.command == "sweep" &&
                   (inline_value || i + 1 < argc)) {
            const char *v = value();
            if (!v)
                return false;
            opt.tableNum = int(std::strtol(v, nullptr, 10));
        } else if (arg == "--scenario" || arg == "--scenarios") {
            const char *v = value();
            if (!v)
                return false;
            opt.scenarioList = splitList(v);
        } else if (arg == "--arbitration" ||
                   arg == "--arbitrations") {
            const char *v = value();
            if (!v)
                return false;
            opt.arbitrationList = splitList(v);
        } else if (arg == "--events") {
            const char *v = value();
            if (!v)
                return false;
            opt.benchEvents = std::strtoull(v, nullptr, 10);
            if (opt.benchEvents == 0) {
                std::fprintf(stderr, "pcsim: bad --events '%s'\n", v);
                return false;
            }
        } else if (arg == "--repeats") {
            const char *v = value();
            if (!v)
                return false;
            opt.benchRepeats =
                unsigned(std::strtoul(v, nullptr, 10));
            opt.repeatsSet = true;
            if (opt.benchRepeats == 0) {
                std::fprintf(stderr, "pcsim: bad --repeats '%s'\n", v);
                return false;
            }
        } else if (arg == "--baseline") {
            const char *v = value();
            if (!v)
                return false;
            opt.baselinePath = v;
        } else if (arg == "--output" || arg == "-o") {
            const char *v = value();
            if (!v)
                return false;
            opt.outputPath = v;
        } else if (arg == "--text") {
            opt.textMode = true;
        } else if (arg == "--timing") {
            opt.timing = true;
        } else if (arg == "--checker") {
            opt.checker = true;
        } else if (arg == "--conformance") {
            opt.conformance = true;
        } else if (arg == "--no-mc") {
            opt.lintMc = false;
        } else if (arg == "--policy") {
            const char *v = value();
            if (!v)
                return false;
            opt.lintPolicy = v;
        } else if (arg == "--coverage") {
            const char *v = value();
            if (!v)
                return false;
            opt.coveragePath = v;
        } else if (arg == "--mdg") {
            opt.lintMode = "mdg";
        } else if (arg == "--liveness") {
            opt.lintMode = "liveness";
        } else if (arg == "--repro") {
            const char *v = value();
            if (!v)
                return false;
            opt.reproPath = v;
        } else if (arg == "--deterministic-check") {
            opt.deterministicCheck = true;
        } else if (arg == "--no-table") {
            opt.table = false;
        } else if (arg == "--quiet" || arg == "-q") {
            opt.quiet = true;
        } else if (arg.size() && arg[0] != '-' &&
                   opt.command == "trace") {
            opt.positional.push_back(argv[i]);
        } else {
            std::fprintf(stderr, "pcsim: unknown option '%s'\n",
                         argv[i]);
            return false;
        }
    }
    return true;
}

int
listCommand()
{
    std::printf("workloads:\n");
    for (const auto &w : runner::workloadNames())
        std::printf("  %s\n", w.c_str());
    std::printf("\nconfigurations (16-node presets, see "
                "src/system/presets.hh):\n");
    std::printf("  %-12s baseline directory protocol\n", "base");
    std::printf("  %-12s base + 32K remote access cache (alias: "
                "rac)\n",
                "rac32k");
    std::printf("  %-12s base + 1M remote access cache\n", "rac1m");
    std::printf("  %-12s 32-entry deledc & 32K RAC (alias: pcopt)\n",
                "small");
    std::printf("  %-12s 1K-entry deledc & 1M RAC (alias: "
                "pcopt-large)\n",
                "large");
    std::printf("  %-12s delegation without speculative updates\n",
                "delegation");
    std::printf("  %-12s Dragon-style write-update protocol (alias: "
                "update)\n",
                "write-update");
    std::printf("  %-12s write-update with per-line self-"
                "invalidation (alias: adaptive)\n",
                "adaptive-hybrid");
    std::printf("\ncoherence policies (pcsim compare / lint "
                "--policy):\n");
    for (ProtocolKind kind : registeredPolicyKinds())
        std::printf("  %s\n", policyFor(kind).name());
    return 0;
}

/**
 * Serialize + write the requested outputs; returns the JSON doc.
 * Sets io_ok to false when a requested output file could not be
 * written (callers turn that into a nonzero exit).
 */
JsonValue
emitResults(const std::vector<runner::JobResult> &results,
            const Options &opt, bool &io_ok)
{
    JsonValue doc = runner::resultsToJson(results, opt.timing);
    io_ok = true;
    if (!opt.jsonPath.empty())
        io_ok &= runner::writeTextFile(opt.jsonPath, doc.dump(2) + "\n");
    if (!opt.csvPath.empty())
        io_ok &= runner::writeTextFile(
            opt.csvPath, runner::resultsToCsv(results, opt.timing));
    return doc;
}

int
failedCount(const std::vector<runner::JobResult> &results)
{
    int failed = 0;
    for (const auto &r : results)
        failed += r.ok ? 0 : 1;
    return failed;
}

/**
 * Run the set twice and byte-compare the serialized results.
 * @return 0 when identical, 3 on mismatch.
 */
int
deterministicCheck(const runner::JobSet &set,
                   const runner::RunnerOptions &ropts)
{
    // Serialize without host timing: wall-clock rates differ between
    // two otherwise identical runs.
    const std::string a =
        runner::resultsToJson(runner::runJobs(set, ropts),
                              /*with_timing=*/false)
            .dump(2);
    const std::string b =
        runner::resultsToJson(runner::runJobs(set, ropts),
                              /*with_timing=*/false)
            .dump(2);
    if (a == b) {
        std::fprintf(stderr,
                     "deterministic-check: OK (%zu jobs, %zu bytes "
                     "identical)\n",
                     set.size(), a.size());
        return 0;
    }
    std::size_t off = 0;
    while (off < a.size() && off < b.size() && a[off] == b[off])
        ++off;
    std::fprintf(stderr,
                 "deterministic-check: MISMATCH at byte %zu "
                 "(results differ between two identical runs)\n",
                 off);
    return 3;
}

int
runCommand(const Options &opt)
{
    if (opt.workloads.empty()) {
        std::fprintf(stderr,
                     "pcsim run: --workload is required (try 'pcsim "
                     "list')\n");
        return 1;
    }

    runner::JobSet set;
    for (const auto &w : opt.workloads) {
        const std::string canonical = runner::canonicalWorkload(w);
        if (canonical.empty()) {
            std::fprintf(stderr, "pcsim: unknown workload '%s'\n",
                         w.c_str());
            return 1;
        }
        for (const auto &c : opt.configs) {
            MachineConfig cfg;
            std::string cname;
            if (!runner::namedMachineConfig(c, opt.nodes, cfg,
                                            cname)) {
                std::fprintf(stderr, "pcsim: unknown config '%s'\n",
                             c.c_str());
                return 1;
            }
            cfg.proto.checkerEnabled = opt.checker;
            cfg.proto.conformanceEnabled = opt.conformance;
            cfg.proto.sharerGranularityLog2 = log2Ceil(opt.coarse);
            const std::string verr = cfg.proto.validateError();
            if (!verr.empty()) {
                std::fprintf(stderr,
                             "pcsim: invalid configuration '%s' at "
                             "%u nodes: %s\n",
                             cname.c_str(), opt.nodes, verr.c_str());
                return 1;
            }
            for (std::uint64_t seed : opt.seeds) {
                runner::Job j;
                j.workload = canonical;
                j.cfg = cfg;
                j.configName = cname;
                j.seed = seed;
                j.scale = opt.scale;
                set.add(std::move(j));
            }
        }
    }

    for (auto &j : set.jobs())
        j.cfg.shards = opt.parallelShards;

    runner::RunnerOptions ropts;
    ropts.threads = opt.threadsSet ? opt.threads : 1;
    ropts.progress = !opt.quiet;

    if (opt.deterministicCheck)
        return deterministicCheck(set, ropts);

    const auto results = runner::runJobs(set, ropts);
    bool io_ok = true;
    emitResults(results, opt, io_ok);

    // Human summary unless JSON/CSV already went to stdout.
    if (opt.jsonPath != "-" && opt.csvPath != "-") {
        std::printf("%-24s | %-12s | %-12s | %-12s\n", "job", "cycles",
                    "remote miss", "messages");
        for (const auto &r : results) {
            if (r.ok)
                std::printf("%-24s | %-12llu | %-12llu | %-12llu\n",
                            r.job.label.c_str(),
                            (unsigned long long)r.result.cycles,
                            (unsigned long long)
                                r.result.nodes.remoteMisses,
                            (unsigned long long)r.result.netMessages);
            else
                std::printf("%-24s | FAILED: %s\n",
                            r.job.label.c_str(), r.error.c_str());
        }
    }
    if (!io_ok)
        return 1;
    return failedCount(results) ? 2 : 0;
}

int
sweepCommand(const Options &opt)
{
    runner::JobSet set;
    std::string name;
    void (*print)(const JsonValue &, std::FILE *) = nullptr;

    if (opt.figure == 7) {
        set = figures::figure7Jobs(opt.scale, opt.nodes);
        print = figures::printFigure7;
        name = "fig7";
    } else if (opt.figure == 9) {
        set = figures::figure9Jobs(opt.scale, opt.nodes);
        print = figures::printFigure9;
        name = "fig9";
    } else if (opt.figure == 10) {
        set = figures::figure10Jobs(opt.scale, opt.nodes);
        print = figures::printFigure10;
        name = "fig10";
    } else if (opt.tableNum == 2) {
        // Table 2 is static workload metadata; no simulations.
        figures::printTable2(opt.scale, opt.nodes);
        return 0;
    } else {
        std::fprintf(stderr,
                     "pcsim sweep: pick --figure 7|9|10 or --table "
                     "2\n");
        return 1;
    }

    for (auto &j : set.jobs())
        j.cfg.shards = opt.parallelShards;

    runner::RunnerOptions ropts;
    ropts.threads = opt.threadsSet ? opt.threads : 0; // 0 = all cores
    ropts.progress = !opt.quiet;

    if (opt.deterministicCheck)
        return deterministicCheck(set, ropts);

    const auto results = runner::runJobs(set, ropts);

    Options emit_opt = opt;
    if (emit_opt.jsonPath.empty())
        emit_opt.jsonPath = "pcsim-" + name + ".results.json";
    bool io_ok = true;
    JsonValue doc = emitResults(results, emit_opt, io_ok);

    if (opt.table) {
        // The table is a formatting layer over the serialized
        // document: re-read the file we just wrote when there is one
        // on disk, otherwise format the in-memory serialization.
        if (emit_opt.jsonPath != "-") {
            std::fprintf(stderr, "results: %s\n",
                         emit_opt.jsonPath.c_str());
            std::string text;
            if (runner::readTextFile(emit_opt.jsonPath, text))
                doc = JsonValue::parse(text);
        }
        print(doc, stdout);
    }
    if (!io_ok)
        return 1;
    return failedCount(results) ? 2 : 0;
}

int
lintCoverage(const Options &opt)
{
    const verify::TransitionSpec &spec = verify::protocolSpec();

    std::string text;
    if (!runner::readTextFile(opt.coveragePath, text)) {
        std::fprintf(stderr, "pcsim lint: cannot read '%s'\n",
                     opt.coveragePath.c_str());
        return 1;
    }
    JsonValue doc;
    try {
        doc = JsonValue::parse(text);
    } catch (const JsonParseError &e) {
        std::fprintf(stderr, "pcsim lint: '%s' is not valid JSON: %s\n",
                     opt.coveragePath.c_str(), e.what());
        return 1;
    }

    // Merge the conformance blocks of every result in the document.
    std::vector<verify::TransitionCount> observed;
    const JsonValue *arr = doc.find("results");
    if (!arr || !arr->isArray()) {
        std::fprintf(stderr,
                     "pcsim lint: '%s' has no \"results\" array\n",
                     opt.coveragePath.c_str());
        return 1;
    }
    unsigned with_conformance = 0;
    for (std::size_t i = 0; i < arr->size(); ++i) {
        const JsonValue *conf = arr->at(i).find("conformance");
        if (!conf)
            continue;
        ++with_conformance;
        const JsonValue &obs = conf->at("observed");
        for (std::size_t k = 0; k < obs.size(); ++k) {
            const JsonValue &e = obs.at(k);
            verify::TransitionCount t;
            t.ctrl = std::uint8_t(e.at("ctrl").asUInt());
            t.state = std::uint8_t(e.at("state").asUInt());
            t.event = std::uint8_t(e.at("event").asUInt());
            t.next = std::uint8_t(e.at("next").asUInt());
            t.count = e.at("count").asUInt();
            observed.push_back(t);
        }
    }
    if (!with_conformance) {
        std::fprintf(stderr,
                     "pcsim lint: no result in '%s' carries "
                     "conformance data (re-run with --conformance)\n",
                     opt.coveragePath.c_str());
        return 1;
    }

    const verify::CoverageReport rep =
        verify::computeCoverage(spec, observed);
    bool io_ok = true;
    if (!opt.jsonPath.empty())
        io_ok &= runner::writeTextFile(
            opt.jsonPath,
            verify::coverageToJson(spec, rep).dump(2) + "\n");
    if (!opt.csvPath.empty())
        io_ok &= runner::writeTextFile(
            opt.csvPath, verify::coverageToCsv(spec, rep));

    if (opt.jsonPath != "-" && opt.csvPath != "-") {
        std::printf("coverage: %llu of %llu legal transitions "
                    "exercised, %llu never seen\n",
                    (unsigned long long)rep.exercised,
                    (unsigned long long)rep.legal,
                    (unsigned long long)(rep.legal - rep.exercised));
        for (const auto &row : rep.rows) {
            if (row.count)
                continue;
            std::printf("  missing %-8s %-10s --%s--> %s\n",
                        verify::ctrlName(row.ctrl),
                        spec.stateName(row.ctrl, row.state).c_str(),
                        verify::eventName(row.event),
                        spec.stateName(row.ctrl, row.next).c_str());
        }
    }
    return io_ok ? 0 : 1;
}

/** Print one policy's lint report (the classic text rendering). */
void
printLintReport(const verify::TransitionSpec &spec,
                const verify::LintReport &rep, const char *label)
{
    if (label)
        std::printf("policy %s:\n", label);
    std::printf("spec: %zu rules, %zu impossible pairs\n",
                spec.rules().size(), spec.impossible().size());
    if (rep.mcConfigs) {
        std::printf("model cross-check: %llu configs, %llu states, "
                    "%llu distinct transitions\n",
                    (unsigned long long)rep.mcConfigs,
                    (unsigned long long)rep.mcStates,
                    (unsigned long long)rep.mcObserved);
    }
    for (const auto &f : rep.findings) {
        std::string where = f.ctrl;
        if (!f.state.empty())
            where += " " + f.state;
        if (!f.event.empty())
            where += " x " + f.event;
        std::printf("%s: %s: %s\n", f.kind.c_str(), where.c_str(),
                    f.detail.c_str());
    }
    if (rep.clean())
        std::printf("lint: clean\n");
    else
        std::printf("lint: %zu finding(s)\n", rep.findings.size());
}

/** Lint one policy's spec; prints the findings and the summary line
 *  (prefixed with the policy name when @p label is set). */
int
lintOneSpec(const Options &opt, const verify::TransitionSpec &spec,
            verify::McCheckSet mc_set, const char *label)
{
    const verify::LintReport rep =
        opt.lintMc ? verify::lintSpecWithModel(spec, mc_set)
                   : verify::lintSpec(spec);

    bool io_ok = true;
    if (!opt.jsonPath.empty())
        io_ok &= runner::writeTextFile(
            opt.jsonPath, verify::lintToJson(spec, rep).dump(2) + "\n");
    if (!opt.csvPath.empty())
        io_ok &= runner::writeTextFile(opt.csvPath,
                                       verify::lintToCsv(rep));

    if (opt.jsonPath != "-" && opt.csvPath != "-")
        printLintReport(spec, rep, label);
    if (!io_ok)
        return 1;
    return rep.clean() ? 0 : 2;
}

/** One policy selected for a lint pass. */
struct PolicySel
{
    std::string name;
    const verify::TransitionSpec *spec;
    verify::McCheckSet set;
};

/** Resolve --policy for the mdg/liveness passes ("" means all). */
bool
resolvePolicies(const std::string &which, std::vector<PolicySel> &out)
{
    if (which.empty() || which == "all") {
        for (ProtocolKind kind : registeredPolicyKinds()) {
            const CoherencePolicy &p = policyFor(kind);
            out.push_back({p.name(), &p.spec(), modelCheckSetFor(kind)});
        }
        return true;
    }
    ProtocolKind kind;
    if (!protocolKindFromName(which, kind)) {
        std::fprintf(stderr,
                     "pcsim lint: unknown policy '%s' (pick one of "
                     "mesi-dir, delegation, delegation-updates, "
                     "write-update, adaptive-hybrid, or 'all')\n",
                     which.c_str());
        return false;
    }
    const CoherencePolicy &p = policyFor(kind);
    out.push_back({p.name(), &p.spec(), modelCheckSetFor(kind)});
    return true;
}

int
lintMdgCommand(const Options &opt)
{
    std::vector<PolicySel> sels;
    if (!resolvePolicies(opt.lintPolicy, sels))
        return 1;

    JsonValue policies = JsonValue::array();
    std::size_t total = 0;
    for (const PolicySel &sel : sels) {
        const verify::MdgReport rep = verify::analyzeMdg(*sel.spec);
        policies.push(verify::mdgPolicyJson(sel.name, *sel.spec, rep));
        if (opt.jsonPath != "-") {
            std::printf("policy %s: %zu message types, %zu edges, "
                        "%zu sinks (%llu requester-bound, %llu "
                        "nack-protected edges exempt)\n",
                        sel.name.c_str(), rep.messages.size(),
                        rep.edges.size(), rep.sinks.size(),
                        (unsigned long long)rep.reissueEdges,
                        (unsigned long long)rep.nackProtectedEdges);
            for (const auto &f : rep.findings) {
                std::string where = f.ctrl;
                if (!f.state.empty())
                    where += " " + f.state;
                if (!f.event.empty())
                    where += (where.empty() ? "" : " x ") + f.event;
                std::printf("%s: %s: %s\n", f.kind.c_str(),
                            where.c_str(), f.detail.c_str());
            }
        }
        total += rep.findings.size();
    }

    bool io_ok = true;
    if (!opt.jsonPath.empty())
        io_ok &= runner::writeTextFile(
            opt.jsonPath,
            verify::lintFindingsDocument("mdg", std::move(policies))
                    .dump(2) +
                "\n");
    if (opt.jsonPath != "-") {
        if (total)
            std::printf("mdg: %zu finding(s)\n", total);
        else
            std::printf("mdg: clean\n");
    }
    if (!io_ok)
        return 1;
    return total ? 2 : 0;
}

/** Write the first witness carrying CPU ops as a PCTR repro trace. */
bool
writeLivenessRepro(const std::string &path, const std::string &config,
                   unsigned nodes,
                   const std::vector<verify::WitnessOp> &ops)
{
    std::vector<std::vector<MemOp>> per_node(nodes);
    for (const verify::WitnessOp &op : ops)
        per_node[op.node].push_back(op.isWrite ? MemOp::write(0)
                                               : MemOp::read(0));
    trace::TraceMeta meta;
    meta.nodeCount = nodes;
    meta.workload = "lint-liveness";
    meta.config = config;
    try {
        trace::writeTraceFile(path, meta, per_node);
    } catch (const trace::TraceError &e) {
        std::fprintf(stderr, "pcsim lint: %s\n", e.what());
        return false;
    }
    return true;
}

int
lintLivenessCommand(const Options &opt)
{
    std::vector<PolicySel> sels;
    if (!resolvePolicies(opt.lintPolicy, sels))
        return 1;

    JsonValue policies = JsonValue::array();
    std::size_t total = 0;
    bool io_ok = true;
    bool wrote_repro = false;
    for (const PolicySel &sel : sels) {
        const verify::LivenessReport rep =
            verify::analyzeLiveness(sel.set);
        policies.push(verify::livenessPolicyJson(sel.name, rep));
        if (opt.jsonPath != "-") {
            std::printf("policy %s:\n", sel.name.c_str());
            for (const auto &c : rep.configs) {
                std::printf("  config %s: %llu states, %llu edges "
                            "(%llu progress), %llu quiescent%s\n",
                            c.name.c_str(),
                            (unsigned long long)c.states,
                            (unsigned long long)c.edges,
                            (unsigned long long)c.progressEdges,
                            (unsigned long long)c.quiescentStates,
                            c.completed ? "" : " [state limit hit]");
            }
            for (const auto &f : rep.findings) {
                std::printf("%s (%s): %s\n", f.kind.c_str(),
                            f.config.c_str(), f.detail.c_str());
                std::printf("  witness prefix (%zu steps):\n",
                            f.witness.prefix.size());
                for (std::size_t i = 0; i < f.witness.prefix.size();
                     ++i)
                    std::printf("    %3zu. %s\n", i + 1,
                                f.witness.prefix[i].c_str());
                if (!f.witness.cycle.empty()) {
                    std::printf("  non-progress cycle (%zu steps):\n",
                                f.witness.cycle.size());
                    for (std::size_t i = 0;
                         i < f.witness.cycle.size(); ++i)
                        std::printf("    %3zu. %s\n", i + 1,
                                    f.witness.cycle[i].c_str());
                }
            }
        }
        total += rep.findings.size();

        if (!opt.reproPath.empty() && !wrote_repro) {
            for (const auto &f : rep.findings) {
                if (f.witness.ops.empty())
                    continue;
                io_ok &= writeLivenessRepro(opt.reproPath, f.config, 3,
                                            f.witness.ops);
                wrote_repro = true;
                if (opt.jsonPath != "-")
                    std::printf("repro trace written to %s\n",
                                opt.reproPath.c_str());
                break;
            }
        }
    }

    if (!opt.jsonPath.empty())
        io_ok &= runner::writeTextFile(
            opt.jsonPath,
            verify::lintFindingsDocument("liveness",
                                         std::move(policies))
                    .dump(2) +
                "\n");
    if (opt.jsonPath != "-") {
        if (total)
            std::printf("liveness: %zu finding(s)\n", total);
        else
            std::printf("liveness: clean\n");
    }
    if (!io_ok)
        return 1;
    return total ? 2 : 0;
}

int
lintCommand(const Options &opt)
{
    if (!opt.coveragePath.empty())
        return lintCoverage(opt);

    if (opt.lintMode == "mdg")
        return lintMdgCommand(opt);
    if (opt.lintMode == "liveness")
        return lintLivenessCommand(opt);

    if (opt.lintPolicy.empty()) {
        // Historical default: the shipped full-protocol spec, checked
        // against the MESI-dir + delegation model family (keeps the
        // committed lint_clean.json byte-identical).
        return lintOneSpec(opt, verify::protocolSpec(),
                           verify::McCheckSet::MesiDele, nullptr);
    }

    if (opt.lintPolicy == "all") {
        if (!opt.csvPath.empty()) {
            std::fprintf(stderr,
                         "pcsim lint: --policy=all cannot combine "
                         "with --csv (lint one policy per CSV)\n");
            return 1;
        }
        // With --json the per-policy documents combine into one
        // {"mode": "spec"} envelope; without it, print each policy.
        JsonValue policies = JsonValue::array();
        int worst = 0;
        for (ProtocolKind kind : registeredPolicyKinds()) {
            const CoherencePolicy &p = policyFor(kind);
            const verify::LintReport rep =
                opt.lintMc ? verify::lintSpecWithModel(
                                 p.spec(), modelCheckSetFor(kind))
                           : verify::lintSpec(p.spec());
            if (!opt.jsonPath.empty())
                policies.push(
                    verify::lintPolicyJson(p.name(), p.spec(), rep));
            if (opt.jsonPath != "-")
                printLintReport(p.spec(), rep, p.name());
            worst = std::max(worst, rep.clean() ? 0 : 2);
        }
        if (!opt.jsonPath.empty()) {
            if (!runner::writeTextFile(
                    opt.jsonPath,
                    verify::lintFindingsDocument("spec",
                                                 std::move(policies))
                            .dump(2) +
                        "\n"))
                return 1;
        }
        return worst;
    }

    ProtocolKind kind;
    if (!protocolKindFromName(opt.lintPolicy, kind)) {
        std::fprintf(stderr,
                     "pcsim lint: unknown policy '%s' (pick one of "
                     "mesi-dir, delegation, delegation-updates, "
                     "write-update, adaptive-hybrid, or 'all')\n",
                     opt.lintPolicy.c_str());
        return 1;
    }
    const CoherencePolicy &p = policyFor(kind);
    return lintOneSpec(opt, p.spec(), modelCheckSetFor(kind),
                       p.name());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(stderr);
    const std::string cmd = argv[1];
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return usage(stdout);
    if (cmd == "list")
        return listCommand();

    Options opt;
    opt.command = cmd;
    // `pcsim trace <action> ...`: the action is its own operand.
    std::string traceAction;
    if (cmd == "trace") {
        if (argc < 3) {
            std::fprintf(stderr,
                         "pcsim trace: pick record, replay or info\n");
            return 1;
        }
        traceAction = argv[2];
        if (!parseArgs(argc, argv, opt, 3))
            return 1;
    } else if (!parseArgs(argc, argv, opt)) {
        return 1;
    }

    if (cmd == "trace") {
        if (traceAction == "record") {
            runner::TraceRecordOptions topt;
            if (!opt.workloads.empty())
                topt.workload = opt.workloads.front();
            topt.config = opt.configs.front();
            topt.nodes = opt.nodes;
            topt.scale = opt.scale;
            topt.seed = opt.seeds.front();
            topt.outPath = opt.outputPath;
            topt.jsonPath = opt.jsonPath;
            topt.quiet = opt.quiet;
            if (opt.textMode) {
                if (opt.positional.empty()) {
                    std::fprintf(stderr,
                                 "pcsim trace record: --text needs "
                                 "per-core trace files as operands\n");
                    return 1;
                }
                topt.textPaths = opt.positional;
            } else if (!opt.positional.empty()) {
                std::fprintf(stderr,
                             "pcsim trace record: unexpected operand "
                             "'%s' (text files need --text)\n",
                             opt.positional.front().c_str());
                return 1;
            }
            return runner::runTraceRecord(topt);
        }
        if (traceAction == "replay") {
            runner::TraceReplayOptions topt;
            if (opt.positional.size() != 1) {
                std::fprintf(stderr, "pcsim trace replay: exactly one "
                                     "trace file operand required\n");
                return 1;
            }
            topt.tracePath = opt.positional.front();
            if (opt.configsSet)
                topt.config = opt.configs.front();
            topt.threads = opt.threadsSet ? opt.threads : 1;
            topt.jsonPath = opt.jsonPath;
            topt.csvPath = opt.csvPath;
            topt.quiet = opt.quiet;
            topt.timing = opt.timing;
            return runner::runTraceReplay(topt);
        }
        if (traceAction == "info") {
            if (opt.positional.size() != 1) {
                std::fprintf(stderr, "pcsim trace info: exactly one "
                                     "trace file operand required\n");
                return 1;
            }
            return runner::runTraceInfo(opt.positional.front());
        }
        std::fprintf(stderr,
                     "pcsim trace: unknown action '%s' (pick record, "
                     "replay or info)\n",
                     traceAction.c_str());
        return 1;
    }

    if (cmd == "serve") {
        runner::ServeOptions sopt;
        sopt.scenarios = opt.scenarioList;
        if (!opt.nodeList.empty())
            sopt.nodes = opt.nodeList;
        if (opt.scaleSet)
            sopt.scale = opt.scale;
        sopt.seed = opt.seeds.front();
        sopt.threads = opt.threadsSet ? opt.threads : 0;
        sopt.jsonPath =
            opt.jsonPath.empty() ? "BENCH_serve.json" : opt.jsonPath;
        sopt.csvPath = opt.csvPath;
        sopt.quiet = opt.quiet;
        sopt.timing = opt.timing;
        sopt.deterministicCheck = opt.deterministicCheck;
        sopt.table = opt.table;
        sopt.parallelShards = opt.parallelShards;
        return runner::runServeSweep(sopt);
    }

    if (cmd == "compare") {
        runner::CompareOptions copt;
        copt.scenarios = opt.scenarioList;
        if (!opt.nodeList.empty())
            copt.nodes = opt.nodeList;
        if (opt.scaleSet)
            copt.scale = opt.scale;
        copt.seed = opt.seeds.front();
        copt.threads = opt.threadsSet ? opt.threads : 0;
        copt.jsonPath = opt.jsonPath.empty() ? "BENCH_compare.json"
                                             : opt.jsonPath;
        copt.csvPath = opt.csvPath;
        copt.quiet = opt.quiet;
        copt.timing = opt.timing;
        copt.deterministicCheck = opt.deterministicCheck;
        copt.table = opt.table;
        copt.parallelShards = opt.parallelShards;
        return runner::runCompareSweep(copt);
    }

    if (cmd == "run")
        return runCommand(opt);
    if (cmd == "sweep")
        return sweepCommand(opt);
    if (cmd == "lint")
        return lintCommand(opt);
    if (cmd == "scale") {
        runner::ScaleOptions sopt;
        sopt.nodeCounts = opt.nodeList;
        if (!opt.workloads.empty()) {
            if (opt.workloads.size() > 1) {
                std::fprintf(stderr, "pcsim scale: one workload "
                                     "only\n");
                return 1;
            }
            const std::string canonical =
                runner::canonicalWorkload(opt.workloads[0]);
            if (canonical.empty()) {
                std::fprintf(stderr, "pcsim: unknown workload '%s'\n",
                             opt.workloads[0].c_str());
                return 1;
            }
            sopt.workload = canonical;
        }
        if (opt.scaleSet)
            sopt.scale = opt.scale;
        if (opt.repeatsSet)
            sopt.repeats = opt.benchRepeats;
        sopt.jsonPath = opt.jsonPath;
        sopt.quiet = opt.quiet;
        sopt.parallelShards = opt.parallelShards;
        return runner::runScaleSweep(sopt);
    }
    if (cmd == "faults" || cmd == "qos") {
        runner::FaultsOptions fopt;
        if (!opt.workloads.empty()) {
            if (opt.workloads.size() > 1) {
                std::fprintf(stderr, "pcsim %s: one workload only\n",
                             cmd.c_str());
                return 1;
            }
            const std::string canonical =
                runner::canonicalWorkload(opt.workloads[0]);
            if (canonical.empty()) {
                std::fprintf(stderr, "pcsim: unknown workload '%s'\n",
                             opt.workloads[0].c_str());
                return 1;
            }
            fopt.workload = canonical;
        }
        if (opt.scaleSet)
            fopt.scale = opt.scale;
        fopt.nodes = opt.nodes;
        fopt.scenarios = opt.scenarioList;
        fopt.arbitrations = opt.arbitrationList;
        if (cmd == "qos") {
            // The fairness bake-off: contention scenarios crossed
            // with every arbitration mode (BENCH_qos.json).
            if (fopt.scenarios.empty())
                fopt.scenarios = {"storm", "hotspot"};
            if (fopt.arbitrations.empty())
                fopt.arbitrations = {"nack-retry", "queue",
                                     "aged-priority"};
        }
        fopt.seed = opt.seeds.front();
        fopt.threads = opt.threadsSet ? opt.threads : 0;
        const char *default_json =
            cmd == "qos" ? "BENCH_qos.json" : "BENCH_faults.json";
        fopt.jsonPath =
            opt.jsonPath.empty() ? default_json : opt.jsonPath;
        fopt.csvPath = opt.csvPath;
        fopt.quiet = opt.quiet;
        fopt.deterministicCheck = opt.deterministicCheck;
        fopt.table = opt.table;
        fopt.parallelShards = opt.parallelShards;
        return runner::runFaultSweep(fopt);
    }
    if (cmd == "bench") {
        runner::BenchOptions bopt;
        bopt.kernelEvents = opt.benchEvents;
        bopt.repeats = opt.benchRepeats;
        bopt.jsonPath = opt.jsonPath;
        bopt.baselinePath = opt.baselinePath;
        bopt.quiet = opt.quiet;
        if (opt.parallelBench) {
            if (bopt.jsonPath.empty())
                bopt.jsonPath = "BENCH_parallel.json";
            return runner::runParallelBench(bopt);
        }
        return runner::runBenchSuite(bopt);
    }

    std::fprintf(stderr, "pcsim: unknown command '%s'\n", cmd.c_str());
    return usage(stderr);
}
