file(REMOVE_RECURSE
  "CMakeFiles/producer_consumer_tour.dir/producer_consumer_tour.cpp.o"
  "CMakeFiles/producer_consumer_tour.dir/producer_consumer_tour.cpp.o.d"
  "producer_consumer_tour"
  "producer_consumer_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/producer_consumer_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
