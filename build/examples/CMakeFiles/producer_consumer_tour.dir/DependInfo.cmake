
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/producer_consumer_tour.cpp" "examples/CMakeFiles/producer_consumer_tour.dir/producer_consumer_tour.cpp.o" "gcc" "examples/CMakeFiles/producer_consumer_tour.dir/producer_consumer_tour.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pcsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
