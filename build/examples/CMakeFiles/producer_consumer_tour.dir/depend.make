# Empty dependencies file for producer_consumer_tour.
# This may be replaced when dependencies are built.
