file(REMOVE_RECURSE
  "CMakeFiles/model_check_demo.dir/model_check_demo.cpp.o"
  "CMakeFiles/model_check_demo.dir/model_check_demo.cpp.o.d"
  "model_check_demo"
  "model_check_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_check_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
