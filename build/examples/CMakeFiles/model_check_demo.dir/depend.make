# Empty dependencies file for model_check_demo.
# This may be replaced when dependencies are built.
