file(REMOVE_RECURSE
  "CMakeFiles/test_detector.dir/test_detector.cc.o"
  "CMakeFiles/test_detector.dir/test_detector.cc.o.d"
  "test_detector"
  "test_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
