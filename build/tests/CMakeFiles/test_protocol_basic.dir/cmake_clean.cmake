file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_basic.dir/test_protocol_basic.cc.o"
  "CMakeFiles/test_protocol_basic.dir/test_protocol_basic.cc.o.d"
  "test_protocol_basic"
  "test_protocol_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
