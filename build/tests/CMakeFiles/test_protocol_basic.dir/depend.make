# Empty dependencies file for test_protocol_basic.
# This may be replaced when dependencies are built.
