# Empty dependencies file for test_protocol_races.
# This may be replaced when dependencies are built.
