file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_races.dir/test_protocol_races.cc.o"
  "CMakeFiles/test_protocol_races.dir/test_protocol_races.cc.o.d"
  "test_protocol_races"
  "test_protocol_races.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_races.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
