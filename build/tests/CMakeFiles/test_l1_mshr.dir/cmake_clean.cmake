file(REMOVE_RECURSE
  "CMakeFiles/test_l1_mshr.dir/test_l1_mshr.cc.o"
  "CMakeFiles/test_l1_mshr.dir/test_l1_mshr.cc.o.d"
  "test_l1_mshr"
  "test_l1_mshr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l1_mshr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
