# Empty compiler generated dependencies file for test_l1_mshr.
# This may be replaced when dependencies are built.
