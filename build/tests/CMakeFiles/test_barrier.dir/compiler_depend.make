# Empty compiler generated dependencies file for test_barrier.
# This may be replaced when dependencies are built.
