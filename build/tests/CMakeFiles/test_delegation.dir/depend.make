# Empty dependencies file for test_delegation.
# This may be replaced when dependencies are built.
