file(REMOVE_RECURSE
  "CMakeFiles/test_delegation.dir/test_delegation.cc.o"
  "CMakeFiles/test_delegation.dir/test_delegation.cc.o.d"
  "test_delegation"
  "test_delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
