file(REMOVE_RECURSE
  "CMakeFiles/test_mc.dir/test_mc.cc.o"
  "CMakeFiles/test_mc.dir/test_mc.cc.o.d"
  "test_mc"
  "test_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
