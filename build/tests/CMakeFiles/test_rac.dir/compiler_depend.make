# Empty compiler generated dependencies file for test_rac.
# This may be replaced when dependencies are built.
