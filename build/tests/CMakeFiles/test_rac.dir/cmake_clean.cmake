file(REMOVE_RECURSE
  "CMakeFiles/test_rac.dir/test_rac.cc.o"
  "CMakeFiles/test_rac.dir/test_rac.cc.o.d"
  "test_rac"
  "test_rac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
