# Empty dependencies file for test_updates.
# This may be replaced when dependencies are built.
