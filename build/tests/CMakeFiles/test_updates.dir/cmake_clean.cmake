file(REMOVE_RECURSE
  "CMakeFiles/test_updates.dir/test_updates.cc.o"
  "CMakeFiles/test_updates.dir/test_updates.cc.o.d"
  "test_updates"
  "test_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
