# Empty dependencies file for test_cache_array.
# This may be replaced when dependencies are built.
