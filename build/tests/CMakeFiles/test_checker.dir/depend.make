# Empty dependencies file for test_checker.
# This may be replaced when dependencies are built.
