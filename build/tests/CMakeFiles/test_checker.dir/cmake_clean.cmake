file(REMOVE_RECURSE
  "CMakeFiles/test_checker.dir/test_checker.cc.o"
  "CMakeFiles/test_checker.dir/test_checker.cc.o.d"
  "test_checker"
  "test_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
