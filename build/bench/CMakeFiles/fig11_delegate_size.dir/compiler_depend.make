# Empty compiler generated dependencies file for fig11_delegate_size.
# This may be replaced when dependencies are built.
