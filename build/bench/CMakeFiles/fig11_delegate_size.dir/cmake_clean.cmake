file(REMOVE_RECURSE
  "CMakeFiles/fig11_delegate_size.dir/fig11_delegate_size.cc.o"
  "CMakeFiles/fig11_delegate_size.dir/fig11_delegate_size.cc.o.d"
  "fig11_delegate_size"
  "fig11_delegate_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_delegate_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
