# Empty compiler generated dependencies file for table3_consumers.
# This may be replaced when dependencies are built.
