file(REMOVE_RECURSE
  "CMakeFiles/table3_consumers.dir/table3_consumers.cc.o"
  "CMakeFiles/table3_consumers.dir/table3_consumers.cc.o.d"
  "table3_consumers"
  "table3_consumers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_consumers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
