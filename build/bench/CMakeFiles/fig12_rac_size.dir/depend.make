# Empty dependencies file for fig12_rac_size.
# This may be replaced when dependencies are built.
