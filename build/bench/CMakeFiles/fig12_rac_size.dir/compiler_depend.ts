# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig12_rac_size.
