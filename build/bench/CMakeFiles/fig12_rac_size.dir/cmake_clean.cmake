file(REMOVE_RECURSE
  "CMakeFiles/fig12_rac_size.dir/fig12_rac_size.cc.o"
  "CMakeFiles/fig12_rac_size.dir/fig12_rac_size.cc.o.d"
  "fig12_rac_size"
  "fig12_rac_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_rac_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
