file(REMOVE_RECURSE
  "CMakeFiles/fig9_intervention_delay.dir/fig9_intervention_delay.cc.o"
  "CMakeFiles/fig9_intervention_delay.dir/fig9_intervention_delay.cc.o.d"
  "fig9_intervention_delay"
  "fig9_intervention_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_intervention_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
