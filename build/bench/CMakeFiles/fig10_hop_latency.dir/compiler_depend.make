# Empty compiler generated dependencies file for fig10_hop_latency.
# This may be replaced when dependencies are built.
