file(REMOVE_RECURSE
  "CMakeFiles/fig10_hop_latency.dir/fig10_hop_latency.cc.o"
  "CMakeFiles/fig10_hop_latency.dir/fig10_hop_latency.cc.o.d"
  "fig10_hop_latency"
  "fig10_hop_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hop_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
