file(REMOVE_RECURSE
  "CMakeFiles/fig8_equal_area.dir/fig8_equal_area.cc.o"
  "CMakeFiles/fig8_equal_area.dir/fig8_equal_area.cc.o.d"
  "fig8_equal_area"
  "fig8_equal_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_equal_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
