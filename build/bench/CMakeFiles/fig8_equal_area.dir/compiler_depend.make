# Empty compiler generated dependencies file for fig8_equal_area.
# This may be replaced when dependencies are built.
