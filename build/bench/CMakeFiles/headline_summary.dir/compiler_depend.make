# Empty compiler generated dependencies file for headline_summary.
# This may be replaced when dependencies are built.
