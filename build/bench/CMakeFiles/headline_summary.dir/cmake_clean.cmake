file(REMOVE_RECURSE
  "CMakeFiles/headline_summary.dir/headline_summary.cc.o"
  "CMakeFiles/headline_summary.dir/headline_summary.cc.o.d"
  "headline_summary"
  "headline_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
