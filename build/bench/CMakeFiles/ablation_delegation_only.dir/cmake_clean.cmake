file(REMOVE_RECURSE
  "CMakeFiles/ablation_delegation_only.dir/ablation_delegation_only.cc.o"
  "CMakeFiles/ablation_delegation_only.dir/ablation_delegation_only.cc.o.d"
  "ablation_delegation_only"
  "ablation_delegation_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delegation_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
