# Empty compiler generated dependencies file for ablation_delegation_only.
# This may be replaced when dependencies are built.
