file(REMOVE_RECURSE
  "CMakeFiles/ablation_detector.dir/ablation_detector.cc.o"
  "CMakeFiles/ablation_detector.dir/ablation_detector.cc.o.d"
  "ablation_detector"
  "ablation_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
