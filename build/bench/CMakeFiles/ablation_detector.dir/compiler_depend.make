# Empty compiler generated dependencies file for ablation_detector.
# This may be replaced when dependencies are built.
