file(REMOVE_RECURSE
  "libpcsim.a"
)
