# Empty dependencies file for pcsim.
# This may be replaced when dependencies are built.
