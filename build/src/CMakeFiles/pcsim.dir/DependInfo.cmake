
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/barrier.cc" "src/CMakeFiles/pcsim.dir/cpu/barrier.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/cpu/barrier.cc.o.d"
  "/root/repo/src/cpu/cpu.cc" "src/CMakeFiles/pcsim.dir/cpu/cpu.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/cpu/cpu.cc.o.d"
  "/root/repo/src/mc/protocol_model.cc" "src/CMakeFiles/pcsim.dir/mc/protocol_model.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/mc/protocol_model.cc.o.d"
  "/root/repo/src/net/message.cc" "src/CMakeFiles/pcsim.dir/net/message.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/net/message.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/pcsim.dir/net/network.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/net/network.cc.o.d"
  "/root/repo/src/protocol/cache_controller.cc" "src/CMakeFiles/pcsim.dir/protocol/cache_controller.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/protocol/cache_controller.cc.o.d"
  "/root/repo/src/protocol/checker.cc" "src/CMakeFiles/pcsim.dir/protocol/checker.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/protocol/checker.cc.o.d"
  "/root/repo/src/protocol/dir_controller.cc" "src/CMakeFiles/pcsim.dir/protocol/dir_controller.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/protocol/dir_controller.cc.o.d"
  "/root/repo/src/protocol/hub.cc" "src/CMakeFiles/pcsim.dir/protocol/hub.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/protocol/hub.cc.o.d"
  "/root/repo/src/protocol/producer_controller.cc" "src/CMakeFiles/pcsim.dir/protocol/producer_controller.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/protocol/producer_controller.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/pcsim.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/sim/logging.cc.o.d"
  "/root/repo/src/system/presets.cc" "src/CMakeFiles/pcsim.dir/system/presets.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/system/presets.cc.o.d"
  "/root/repo/src/system/system.cc" "src/CMakeFiles/pcsim.dir/system/system.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/system/system.cc.o.d"
  "/root/repo/src/workload/appbt.cc" "src/CMakeFiles/pcsim.dir/workload/appbt.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/workload/appbt.cc.o.d"
  "/root/repo/src/workload/barnes.cc" "src/CMakeFiles/pcsim.dir/workload/barnes.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/workload/barnes.cc.o.d"
  "/root/repo/src/workload/cg.cc" "src/CMakeFiles/pcsim.dir/workload/cg.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/workload/cg.cc.o.d"
  "/root/repo/src/workload/em3d.cc" "src/CMakeFiles/pcsim.dir/workload/em3d.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/workload/em3d.cc.o.d"
  "/root/repo/src/workload/lu.cc" "src/CMakeFiles/pcsim.dir/workload/lu.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/workload/lu.cc.o.d"
  "/root/repo/src/workload/mg.cc" "src/CMakeFiles/pcsim.dir/workload/mg.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/workload/mg.cc.o.d"
  "/root/repo/src/workload/micro.cc" "src/CMakeFiles/pcsim.dir/workload/micro.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/workload/micro.cc.o.d"
  "/root/repo/src/workload/ocean.cc" "src/CMakeFiles/pcsim.dir/workload/ocean.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/workload/ocean.cc.o.d"
  "/root/repo/src/workload/suite.cc" "src/CMakeFiles/pcsim.dir/workload/suite.cc.o" "gcc" "src/CMakeFiles/pcsim.dir/workload/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
